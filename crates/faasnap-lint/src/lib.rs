//! `faasnap-lint` — in-tree determinism and architecture linting.
//!
//! The reproduction's results are only trustworthy because every run is
//! deterministic: the byte-pinned Perfetto/Prometheus goldens and the
//! fleet-determinism property tests all assume no code path consults
//! wall-clock time, OS randomness, or hash-map iteration order. This
//! crate machine-checks those assumptions (plus the crate layering) so a
//! future perf PR cannot silently break them.
//!
//! Rules:
//!
//! | rule id | what it flags |
//! |---|---|
//! | `no-wallclock` | `Instant::now` / `SystemTime` outside the criterion shim and the faasnap-obs self-profiler |
//! | `no-os-entropy` | `RandomState`, `thread_rng`-style OS randomness |
//! | `no-threads` | `thread::spawn` / `thread::sleep` |
//! | `no-unordered-iteration` | `HashMap` / `HashSet` (unspecified order) |
//! | `unwrap-budget` | non-test `unwrap()`/`expect(` count above [`UNWRAP_BUDGET`] |
//! | `layering` | crate-DAG violations (see [`layering::check_layering`]) |
//! | `missing-forbid-unsafe` | `sim-*`/`faasnap*` crate root without `#![forbid(unsafe_code)]` |
//! | `malformed-allow` | an allow directive with no reason or unknown rule id |
//!
//! A finding is suppressed with a line comment holding the `faasnap-lint`
//! marker, a colon, and `allow(rule-id, reason)` — the reason is
//! mandatory, and the directive covers its own line plus the next one.
//! Run via `cargo run -p faasnap-lint` or `faasnapd lint`; the repo gate
//! (`scripts/check.sh`) fails on any diagnostic.

#![forbid(unsafe_code)]

pub mod diag;
pub mod layering;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::fs;
use std::path::Path;

pub use diag::Diagnostic;
pub use rules::{lint_source, FileCtx, FileLint, RULE_IDS};
pub use walk::find_workspace_root;

/// Ratchet cap on `unwrap()`/`expect(` call sites in non-test library
/// code. The gate fails when the count exceeds this; when a cleanup PR
/// lowers the real count, lower the cap with it so it never climbs back.
pub const UNWRAP_BUDGET: u64 = 22;

/// Result of linting the whole workspace.
#[derive(Clone, Debug)]
pub struct Report {
    /// All findings, sorted and deduplicated.
    pub diagnostics: Vec<Diagnostic>,
    /// Non-test `unwrap()`/`expect(` call sites found.
    pub unwrap_count: u64,
    /// The cap the count is checked against ([`UNWRAP_BUDGET`]).
    pub unwrap_budget: u64,
}

impl Report {
    /// True if the gate should pass.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// True for crates whose root must carry `#![forbid(unsafe_code)]`.
fn requires_forbid_unsafe(crate_name: &str) -> bool {
    crate_name.starts_with("sim-") || crate_name == "faasnap" || crate_name.starts_with("faasnap-")
}

/// Lints the workspace rooted at `root`: layering over the crate DAG,
/// text rules over every source file, the unwrap ratchet, and the
/// forbid-unsafe check on crate roots.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let ws = walk::discover(root)?;
    let mut diagnostics = layering::check_layering(&ws.manifests);
    let mut unwrap_count = 0u64;

    for f in &ws.files {
        let source = fs::read_to_string(&f.abs).map_err(|e| format!("reading {}: {e}", f.rel))?;
        let ctx = FileCtx {
            path: &f.rel,
            crate_name: &f.crate_name,
            is_harness: f.is_harness,
        };
        let lint = lint_source(&ctx, &source);
        unwrap_count += lint.unwrap_sites;
        diagnostics.extend(lint.diagnostics);
        if f.is_crate_root && requires_forbid_unsafe(&f.crate_name) && !lint.has_forbid_unsafe {
            diagnostics.push(Diagnostic::new(
                &f.rel,
                1,
                "missing-forbid-unsafe",
                "crate root must carry #![forbid(unsafe_code)] (the workspace is unsafe-free; \
                 keep it that way)",
            ));
        }
    }

    if unwrap_count > UNWRAP_BUDGET {
        diagnostics.push(Diagnostic::new(
            "Cargo.toml",
            1,
            "unwrap-budget",
            format!(
                "{unwrap_count} non-test unwrap()/expect() call sites exceed the budget of \
                 {UNWRAP_BUDGET}; handle the error, or consciously raise UNWRAP_BUDGET in \
                 crates/faasnap-lint/src/lib.rs"
            ),
        ));
    }

    diagnostics.sort();
    diagnostics.dedup();
    Ok(Report {
        diagnostics,
        unwrap_count,
        unwrap_budget: UNWRAP_BUDGET,
    })
}
