//! Workspace discovery: crates, manifests, and the Rust sources to scan.
//!
//! Mirrors the workspace layout (`members = ["crates/*"]` plus the root
//! umbrella package): each crate contributes `src/`, `tests/`, `benches/`,
//! and `examples/`; the root package contributes the same top-level
//! directories. Directories named `fixtures` are skipped — they hold
//! deliberately dirty inputs for the linter's own tests — as are hidden
//! directories and `target/`.

use std::fs;
use std::path::{Path, PathBuf};

use crate::layering::{parse_manifest, Manifest};

/// One Rust source file to lint.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Owning package name.
    pub crate_name: String,
    /// True under `tests/`, `benches/`, or `examples/`.
    pub is_harness: bool,
    /// True for the crate root (`src/lib.rs`).
    pub is_crate_root: bool,
}

/// Everything discovery found.
#[derive(Clone, Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// All sources, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// Member crate manifests (the root umbrella manifest is excluded —
    /// it may depend on everything by design).
    pub manifests: Vec<Manifest>,
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn collect_rs(
    dir: &Path,
    rel_prefix: &str,
    crate_name: &str,
    is_harness: bool,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let rel = format!("{rel_prefix}/{name}");
        if path.is_dir() {
            if name.starts_with('.') || name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, &rel, crate_name, is_harness, out)?;
        } else if name.ends_with(".rs") {
            out.push(SourceFile {
                is_crate_root: rel.ends_with("src/lib.rs"),
                rel,
                abs: path,
                crate_name: crate_name.to_string(),
                is_harness,
            });
        }
    }
    Ok(())
}

fn collect_package(
    root: &Path,
    pkg_dir_rel: &str,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let base = if pkg_dir_rel.is_empty() {
        root.to_path_buf()
    } else {
        root.join(pkg_dir_rel)
    };
    for (sub, harness) in [
        ("src", false),
        ("tests", true),
        ("benches", true),
        ("examples", true),
    ] {
        let rel = if pkg_dir_rel.is_empty() {
            sub.to_string()
        } else {
            format!("{pkg_dir_rel}/{sub}")
        };
        collect_rs(&base.join(sub), &rel, crate_name, harness, out)?;
    }
    Ok(())
}

/// Discovers the workspace rooted at `root`.
pub fn discover(root: &Path) -> Result<Workspace, String> {
    let root_text = fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("reading {}/Cargo.toml: {e}", root.display()))?;
    if !root_text.contains("[workspace]") {
        return Err(format!("{} is not a workspace root", root.display()));
    }
    let root_pkg = parse_manifest("Cargo.toml", &root_text)?;

    let mut files = Vec::new();
    let mut manifests = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let Some(dir_name) = dir.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let rel_manifest = format!("crates/{dir_name}/Cargo.toml");
        let text = fs::read_to_string(dir.join("Cargo.toml"))
            .map_err(|e| format!("reading {rel_manifest}: {e}"))?;
        let manifest = parse_manifest(&rel_manifest, &text)?;
        collect_package(
            root,
            &format!("crates/{dir_name}"),
            &manifest.name,
            &mut files,
        )?;
        manifests.push(manifest);
    }

    // The root umbrella package: sources only; its manifest is exempt
    // from layering (it re-exports the whole workspace).
    collect_package(root, "", &root_pkg.name, &mut files)?;

    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
        manifests,
    })
}
