//! Architecture rules over the crate dependency DAG.
//!
//! The workspace has a strict layering (see DESIGN.md): the `sim-*`
//! substrate at the bottom, `faasnap-obs` as a leaf over `sim-core`, the
//! FaaSnap runtime crates above the substrate, and only the two harness
//! crates (`faasnap-bench`, `faasnap-cluster`) allowed to reach the
//! daemon. Manifests are parsed with a purpose-built reader (the
//! workspace's `Cargo.toml`s are flat one-line-per-entry tables; no TOML
//! library exists in the sandbox), and violations are reported at the
//! offending dependency line.

use crate::diag::Diagnostic;

/// One dependency entry with the manifest line it appears on.
#[derive(Clone, Debug)]
pub struct Dep {
    /// Dependency package name.
    pub name: String,
    /// 1-based line in the manifest.
    pub line: u32,
}

/// A parsed crate manifest (the slice of it layering needs).
#[derive(Clone, Debug)]
pub struct Manifest {
    /// Package name.
    pub name: String,
    /// Workspace-relative manifest path, for diagnostics.
    pub rel_path: String,
    /// `[dependencies]` entries.
    pub deps: Vec<Dep>,
    /// `[dev-dependencies]` entries (kept for completeness; layering is
    /// enforced on normal dependencies, since dev-deps never ship in the
    /// build graph of a dependent crate).
    pub dev_deps: Vec<Dep>,
}

/// Parses the package name and dependency tables out of a manifest.
pub fn parse_manifest(rel_path: &str, text: &str) -> Result<Manifest, String> {
    let mut section = String::new();
    let mut name = None;
    let mut deps = Vec::new();
    let mut dev_deps = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx as u32 + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        match section.as_str() {
            "package" => {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start();
                    if let Some(v) = rest.strip_prefix('=') {
                        name = Some(v.trim().trim_matches('"').to_string());
                    }
                }
            }
            "dependencies" | "dev-dependencies" => {
                let end = line
                    .find(|c: char| c == '=' || c == '.' || c.is_whitespace())
                    .unwrap_or(line.len());
                let dep = line[..end].trim();
                if !dep.is_empty() {
                    let entry = Dep {
                        name: dep.to_string(),
                        line: lineno,
                    };
                    if section == "dependencies" {
                        deps.push(entry);
                    } else {
                        dev_deps.push(entry);
                    }
                }
            }
            _ => {}
        }
    }
    Ok(Manifest {
        name: name.ok_or_else(|| format!("{rel_path}: no [package] name"))?,
        rel_path: rel_path.to_string(),
        deps,
        dev_deps,
    })
}

fn is_sim(name: &str) -> bool {
    name.starts_with("sim-")
}

fn is_faasnap(name: &str) -> bool {
    name == "faasnap" || name.starts_with("faasnap-")
}

/// Enforces the architecture over the crate DAG:
///
/// 1. `sim-*` crates must not depend on `faasnap*` crates — the substrate
///    knows nothing about the system built on it. `faasnap-obs` is the
///    one exception: it depends only on `sim-core` (rule 3), which makes
///    it part of the substrate in all but name, and the substrate uses it
///    to emit spans.
/// 2. Only `faasnap-bench` and `faasnap-cluster` may depend on
///    `faasnap-daemon` — the daemon is the top of the single-host stack.
/// 3. `faasnap-obs` may depend only on `sim-core`.
/// 4. `faasnap-lint` must stay zero-dependency — the judge owes nothing
///    to the judged.
/// 5. `faasnap-store` may depend only on `sim-core`: the content-addressed
///    chunk store is substrate-adjacent (like `faasnap-obs`), so both the
///    storage substrate and the runtime crates can build on it without
///    the DAG folding back on itself.
/// 6. The graph must be acyclic (checked so synthetic graphs in tests
///    fail loudly; cargo enforces it for the real workspace anyway).
pub fn check_layering(manifests: &[Manifest]) -> Vec<Diagnostic> {
    let members: Vec<&str> = manifests.iter().map(|m| m.name.as_str()).collect();
    let mut diags = Vec::new();

    for m in manifests {
        for d in &m.deps {
            if !members.contains(&d.name.as_str()) {
                continue;
            }
            if is_sim(&m.name) && is_faasnap(&d.name) && d.name != "faasnap-obs" {
                diags.push(Diagnostic::new(
                    &m.rel_path,
                    d.line,
                    "layering",
                    format!(
                        "substrate crate `{}` must not depend on `{}`; only faasnap-obs may \
                         cross upward into the substrate",
                        m.name, d.name
                    ),
                ));
            }
            if d.name == "faasnap-daemon"
                && !matches!(m.name.as_str(), "faasnap-bench" | "faasnap-cluster")
            {
                diags.push(Diagnostic::new(
                    &m.rel_path,
                    d.line,
                    "layering",
                    format!(
                        "`{}` depends on faasnap-daemon; only faasnap-bench and \
                         faasnap-cluster sit above the daemon",
                        m.name
                    ),
                ));
            }
            if m.name == "faasnap-obs" && d.name != "sim-core" {
                diags.push(Diagnostic::new(
                    &m.rel_path,
                    d.line,
                    "layering",
                    format!(
                        "faasnap-obs may depend only on sim-core, not `{}`; it must stay \
                         loadable by every layer",
                        d.name
                    ),
                ));
            }
            if m.name == "faasnap-store" && d.name != "sim-core" {
                diags.push(Diagnostic::new(
                    &m.rel_path,
                    d.line,
                    "layering",
                    format!(
                        "faasnap-store may depend only on sim-core, not `{}`; the chunk \
                         store must stay loadable by substrate and runtime alike",
                        d.name
                    ),
                ));
            }
            if m.name == "faasnap-lint" {
                diags.push(Diagnostic::new(
                    &m.rel_path,
                    d.line,
                    "layering",
                    format!(
                        "faasnap-lint must stay zero-dependency, but depends on `{}`",
                        d.name
                    ),
                ));
            }
        }
    }

    diags.extend(find_cycle(manifests));
    diags.sort();
    diags.dedup();
    diags
}

/// Reports one diagnostic if the dependency graph has a cycle.
fn find_cycle(manifests: &[Manifest]) -> Option<Diagnostic> {
    // Deterministic DFS over names in manifest order with an explicit
    // three-color marking.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let index_of = |name: &str| manifests.iter().position(|m| m.name == name);
    let mut color = vec![Color::White; manifests.len()];

    fn visit(
        i: usize,
        manifests: &[Manifest],
        color: &mut [Color],
        index_of: &dyn Fn(&str) -> Option<usize>,
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        color[i] = Color::Grey;
        stack.push(i);
        for d in &manifests[i].deps {
            let Some(j) = index_of(&d.name) else { continue };
            match color[j] {
                Color::Grey => {
                    let pos = stack.iter().position(|&s| s == j).unwrap_or(0);
                    let mut cycle = stack[pos..].to_vec();
                    cycle.push(j);
                    return Some(cycle);
                }
                Color::White => {
                    if let Some(c) = visit(j, manifests, color, index_of, stack) {
                        return Some(c);
                    }
                }
                Color::Black => {}
            }
        }
        stack.pop();
        color[i] = Color::Black;
        None
    }

    for i in 0..manifests.len() {
        if color[i] == Color::White {
            let mut stack = Vec::new();
            if let Some(cycle) = visit(i, manifests, &mut color, &index_of, &mut stack) {
                let names: Vec<&str> = cycle.iter().map(|&k| manifests[k].name.as_str()).collect();
                let first = cycle.iter().min().map(|&k| &manifests[k])?;
                return Some(Diagnostic::new(
                    &first.rel_path,
                    1,
                    "layering",
                    format!("dependency cycle: {}", names.join(" -> ")),
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &str, deps: &[&str]) -> Manifest {
        Manifest {
            name: name.to_string(),
            rel_path: format!("crates/{name}/Cargo.toml"),
            deps: deps
                .iter()
                .enumerate()
                .map(|(i, d)| Dep {
                    name: d.to_string(),
                    line: i as u32 + 10,
                })
                .collect(),
            dev_deps: Vec::new(),
        }
    }

    #[test]
    fn parse_manifest_reads_name_and_deps() {
        let text = "[package]\nname = \"sim-mm\"\nversion.workspace = true\n\n\
                    [dependencies]\nsim-core.workspace = true\nsim-storage = { path = \"x\" }\n\n\
                    [dev-dependencies]\nproptest.workspace = true\n\n\
                    [[bench]]\nname = \"not-a-package\"\n";
        let m = parse_manifest("crates/sim-mm/Cargo.toml", text).unwrap();
        assert_eq!(m.name, "sim-mm");
        let deps: Vec<&str> = m.deps.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(deps, vec!["sim-core", "sim-storage"]);
        assert_eq!(m.deps[0].line, 6);
        let dev: Vec<&str> = m.dev_deps.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(dev, vec!["proptest"]);
    }

    #[test]
    fn clean_graph_passes() {
        let ms = vec![
            m("sim-core", &[]),
            m("faasnap-obs", &["sim-core"]),
            m("faasnap-store", &["sim-core"]),
            m("sim-mm", &["sim-core", "faasnap-obs"]),
            m("faasnap", &["sim-core", "sim-mm", "faasnap-store"]),
            m("faasnap-daemon", &["faasnap", "faasnap-store"]),
            m("faasnap-cluster", &["faasnap-daemon", "faasnap-store"]),
            m("faasnap-bench", &["faasnap-daemon", "faasnap-cluster"]),
            m("faasnap-lint", &[]),
        ];
        assert!(check_layering(&ms).is_empty());
    }

    #[test]
    fn substrate_must_not_reach_up() {
        let ms = vec![m("faasnap", &[]), m("sim-mm", &["faasnap"])];
        let d = check_layering(&ms);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("substrate"));
        assert_eq!(d[0].path, "crates/sim-mm/Cargo.toml");
        assert_eq!(d[0].line, 10);
    }

    #[test]
    fn only_harness_crates_reach_daemon() {
        let ms = vec![m("faasnap-daemon", &[]), m("faasnap", &["faasnap-daemon"])];
        let d = check_layering(&ms);
        assert!(d.iter().any(|x| x.message.contains("above the daemon")));
    }

    #[test]
    fn obs_depends_only_on_sim_core() {
        let ms = vec![
            m("sim-core", &[]),
            m("sim-mm", &["sim-core"]),
            m("faasnap-obs", &["sim-core", "sim-mm"]),
        ];
        let d = check_layering(&ms);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("only on sim-core"));
    }

    #[test]
    fn lint_crate_must_be_zero_dependency() {
        let ms = vec![m("sim-core", &[]), m("faasnap-lint", &["sim-core"])];
        let d = check_layering(&ms);
        assert!(d.iter().any(|x| x.message.contains("zero-dependency")));
    }

    #[test]
    fn store_depends_only_on_sim_core() {
        let ms = vec![
            m("sim-core", &[]),
            m("sim-storage", &["sim-core"]),
            m("faasnap-store", &["sim-core", "sim-storage"]),
        ];
        let d = check_layering(&ms);
        assert_eq!(d.len(), 1);
        assert!(d[0]
            .message
            .contains("faasnap-store may depend only on sim-core"));
    }

    #[test]
    fn cycles_detected() {
        let ms = vec![
            m("faasnap-bench", &["faasnap-daemon"]),
            m("faasnap-daemon", &["faasnap"]),
            m("faasnap", &["faasnap-bench"]),
        ];
        let d = check_layering(&ms);
        assert!(d.iter().any(|x| x.message.contains("dependency cycle")));
    }

    #[test]
    fn external_deps_ignored() {
        let ms = vec![m("sim-core", &["libc", "serde"])];
        assert!(check_layering(&ms).is_empty());
    }
}
