//! The deep passes: interprocedural determinism taint plus the AST rules
//! that ride the same parse (`no-env-read`, `panic-path`,
//! `float-determinism`, `dead-allow`).
//!
//! The line rules catch a nondeterminism source *at the call site*; they
//! cannot catch a helper that wraps `SystemTime::now()` and is then
//! called from a golden-emitting path. The taint pass closes that hole:
//!
//! * **Sources** are exactly the sites the line rules (plus the deep
//!   `no-env-read` rule) flag — wall-clock, OS entropy, thread spawns,
//!   unordered `HashMap`/`HashSet` iteration, ambient env reads. A site
//!   sanctioned by an `allow(rule-id, reason)` directive, or by a
//!   crate-level carve-out (the criterion shim, the faasnap-obs
//!   `wallclock`-feature self-profiler), seeds no taint: the allow is an
//!   argued claim that nondeterminism never escapes.
//! * **Propagation** walks the reverse call graph from each source's
//!   enclosing function. Every public, non-test function reached at
//!   distance ≥ 1 is reported with its *shortest* source-to-caller
//!   chain — the laundering path the line lexer cannot see.
//!
//! Conservatism: unresolvable calls over-link (see [`crate::callgraph`]),
//! so taint over-propagates rather than under-propagates. Suppress a
//! false positive with `allow(determinism-taint, reason)` at the flagged
//! function, or — better — with an argued allow at the source, which
//! un-seeds every chain through it.

use std::collections::BTreeMap;

use crate::callgraph::{self, CallSite, CrateDeps, FileUnit, Graph};
use crate::diag::Diagnostic;
use crate::rules::{cfg_test_lines, consume_allow, count_matches, AllowRecord};

/// Ambient-environment read patterns (the `no-env-read` sources).
/// `env::args`/`current_dir` are CLI inputs, not ambient state, and stay
/// legal; `env::var*` makes behavior depend on invisible machine state.
const ENV_PATTERNS: &[&str] = &["env::var", "env::var_os", "env::vars", "env::vars_os"];

/// Macros whose expansion is an unconditional panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Map types whose key type position is checked for floats.
const MAP_TYPES: &[&str] = &[
    "BTreeMap", "BTreeSet", "HashMap", "HashSet", "DetMap", "DetSet",
];

/// Everything the deep passes produce for the final report.
#[derive(Clone, Debug, Default)]
pub struct DeepFindings {
    /// Taint, env, float, panic-budget, and dead-allow diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// Non-test panic-path sites (`panic!`-family macros, `.expect(`,
    /// slice indexing) — the `panic-path` budget input.
    pub panic_sites: u64,
}

/// One taint seed: a nondeterminism source site inside a function.
#[derive(Clone, Debug)]
struct Seed {
    node: usize,
    rule: String,
    path: String,
    line: u32,
}

/// Runs every deep pass. `lints[i]`/`scanned[i]` must correspond to
/// `files[i]`; allow records are marked used as passes consume them, and
/// whatever stays unused afterwards becomes a `dead-allow` diagnostic.
pub fn deep_passes(
    files: &[FileUnit],
    scanned_masked: &[Vec<String>],
    allows: &mut [Vec<AllowRecord>],
    shallow_diags: &[Diagnostic],
    deps: &CrateDeps,
) -> DeepFindings {
    let mut findings = DeepFindings::default();
    let graph = callgraph::build(files, deps);

    // Index nodes by (file, item) for seed lookup.
    let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (n, node) in graph.nodes.iter().enumerate() {
        node_of.insert((node.file, node.item), n);
    }
    let file_by_rel: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.rel.as_str(), i))
        .collect();

    let mut seeds: Vec<Seed> = Vec::new();

    // Pass 1: env reads (deep-only line rule; also taint sources).
    for (fi, file) in files.iter().enumerate() {
        if file.is_harness {
            continue;
        }
        for (idx, mline) in scanned_masked[fi].iter().enumerate() {
            let line = idx as u32 + 1;
            for pat in ENV_PATTERNS {
                if count_matches(mline, pat) == 0 {
                    continue;
                }
                if consume_allow(&mut allows[fi], "no-env-read", line) {
                    continue;
                }
                findings.diagnostics.push(Diagnostic::new(
                    &file.rel,
                    line,
                    "no-env-read",
                    format!(
                        "ambient environment read `{pat}` makes behavior depend on invisible \
                         machine state; take configuration as an explicit argument"
                    ),
                ));
                if let Some(item) = file.parsed.fn_covering_line(line) {
                    if let Some(&node) = node_of.get(&(fi, item)) {
                        seeds.push(Seed {
                            node,
                            rule: "no-env-read".to_string(),
                            path: file.rel.clone(),
                            line,
                        });
                    }
                }
            }
        }
    }

    // Pass 2: seeds from the shallow determinism findings. A finding
    // exists exactly where no allow and no crate carve-out sanctions the
    // site, which is precisely the taint-seeding condition.
    for d in shallow_diags {
        if !matches!(
            d.rule,
            "no-wallclock" | "no-os-entropy" | "no-threads" | "no-unordered-iteration"
        ) {
            continue;
        }
        let Some(&fi) = file_by_rel.get(d.path.as_str()) else {
            continue;
        };
        if let Some(item) = files[fi].parsed.fn_covering_line(d.line) {
            if let Some(&node) = node_of.get(&(fi, item)) {
                seeds.push(Seed {
                    node,
                    rule: d.rule.to_string(),
                    path: d.path.clone(),
                    line: d.line,
                });
            }
        }
    }

    // Pass 3: taint propagation — multi-source BFS over reverse edges,
    // shortest chain per node, deterministic by (seed order, node index).
    propagate(&graph, files, &seeds, allows, &mut findings.diagnostics);

    // Pass 4: panic-path budget + float-determinism, both per function.
    let pub_nodes: Vec<usize> = (0..graph.nodes.len())
        .filter(|&n| graph.nodes[n].is_pub && !graph.nodes[n].is_test)
        .collect();
    let from_public = graph.reachable_from(&pub_nodes);

    for (fi, file) in files.iter().enumerate() {
        if file.is_harness {
            continue;
        }
        let test_lines = cfg_test_lines(&scanned_masked[fi]);
        let in_test = |line: u32| test_lines.get(line as usize - 1).copied().unwrap_or(false);

        for (ii, item) in file.parsed.fns.iter().enumerate() {
            if item.in_cfg_test || item.body.is_empty() {
                continue;
            }
            let node = node_of.get(&(fi, ii)).copied();
            for site in callgraph::extract_sites(&file.parsed, item.body.clone()) {
                let panicky = match &site {
                    CallSite::Macro { name, .. } => PANIC_MACROS.contains(&name.as_str()),
                    CallSite::Method { name, .. } => name == "expect",
                    CallSite::Index { .. } => true,
                    _ => false,
                };
                if panicky && !consume_allow(&mut allows[fi], "panic-path", site.line()) {
                    findings.panic_sites += 1;
                }
                // Float comparison hazard: `.partial_cmp(` on a path a
                // public function can reach (golden output flows through
                // the public surface).
                if let CallSite::Method { name, line } = &site {
                    if name == "partial_cmp"
                        && node.is_some_and(|n| from_public[n] || graph.nodes[n].is_pub)
                        && !in_test(*line)
                        && !consume_allow(&mut allows[fi], "float-determinism", *line)
                    {
                        findings.diagnostics.push(Diagnostic::new(
                            &file.rel,
                            *line,
                            "float-determinism",
                            "partial_cmp on a golden-reaching path: NaN makes the comparison \
                             non-total and platform-dependent; use f64::total_cmp (or sort on \
                             an integer key)"
                                .to_string(),
                        ));
                    }
                }
            }
        }

        // Float map keys: a token-level type scan (`BTreeMap<f64, …>`
        // and friends, wherever they appear outside tests).
        let toks = &file.parsed.tokens;
        for w in 0..toks.len().saturating_sub(2) {
            let is_map = toks[w].kind.word().is_some_and(|t| MAP_TYPES.contains(&t));
            if is_map
                && toks[w + 1].kind.is('<')
                && toks[w + 2]
                    .kind
                    .word()
                    .is_some_and(|k| k == "f32" || k == "f64")
            {
                let line = toks[w].line;
                if !in_test(line) && !consume_allow(&mut allows[fi], "float-determinism", line) {
                    findings.diagnostics.push(Diagnostic::new(
                        &file.rel,
                        line,
                        "float-determinism",
                        "float-keyed collection: rounding differences reorder float keys \
                         across platforms; key on integer units (ns, pages, bytes) instead"
                            .to_string(),
                    ));
                }
            }
        }
    }

    // Pass 5: dead allows — directives that suppressed nothing anywhere.
    for (fi, file_allows) in allows.iter().enumerate() {
        for a in file_allows {
            if !a.used {
                findings.diagnostics.push(Diagnostic::new(
                    &files[fi].rel,
                    a.line,
                    "dead-allow",
                    format!(
                        "allow({}) no longer suppresses any finding; remove the directive so \
                         the ratchet stays honest",
                        a.rule
                    ),
                ));
            }
        }
    }

    findings.diagnostics.sort();
    findings.diagnostics.dedup();
    findings
}

/// Multi-source BFS from seeds over reverse call edges; reports each
/// public non-test function first reached at distance ≥ 1 with its
/// shortest chain back to the seed.
fn propagate(
    graph: &Graph,
    files: &[FileUnit],
    seeds: &[Seed],
    allows: &mut [Vec<AllowRecord>],
    out: &mut Vec<Diagnostic>,
) {
    const UNSEEN: usize = usize::MAX;
    // parent[n] points one step toward the seed; seed_of[n] indexes into
    // `seeds`. Seeds are processed in order, so ties resolve to the
    // earliest seed and the report is stable.
    let mut parent = vec![UNSEEN; graph.nodes.len()];
    let mut seed_of = vec![UNSEEN; graph.nodes.len()];
    let mut queue: Vec<usize> = Vec::new();
    for (si, s) in seeds.iter().enumerate() {
        if seed_of[s.node] == UNSEEN {
            seed_of[s.node] = si;
            parent[s.node] = s.node;
            queue.push(s.node);
        }
    }
    let mut head = 0usize;
    while head < queue.len() {
        let n = queue[head];
        head += 1;
        for &caller in &graph.callers[n] {
            if seed_of[caller] == UNSEEN {
                seed_of[caller] = seed_of[n];
                parent[caller] = n;
                queue.push(caller);
            }
        }
    }

    for n in 0..graph.nodes.len() {
        let node = &graph.nodes[n];
        if seed_of[n] == UNSEEN || parent[n] == n || !node.is_pub || node.is_test {
            continue;
        }
        let seed = &seeds[seed_of[n]];
        // Chain from this function down to the seed's function.
        let mut chain: Vec<String> = Vec::new();
        let mut cur = n;
        loop {
            chain.push(graph.label(cur));
            if parent[cur] == cur {
                break;
            }
            cur = parent[cur];
        }
        let file = &files[node.file];
        if consume_allow(&mut allows[node.file], "determinism-taint", node.line) {
            continue;
        }
        out.push(Diagnostic::new(
            &file.rel,
            node.line,
            "determinism-taint",
            format!(
                "public fn `{}` reaches a {} source ({}:{}) via {}; everything it emits can \
                 differ across runs — remove the source or argue an allow({}, ...) at it",
                graph.label(n),
                seed.rule,
                seed.path,
                seed.line,
                chain.join(" -> "),
                seed.rule,
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parse::parse_file;
    use crate::rules::{lint_scanned, FileCtx};

    /// Runs the full deep pipeline over in-memory (path, crate, source)
    /// triples, the way `lint_workspace_deep` does.
    fn run(inputs: &[(&str, &str, &str)]) -> (Vec<Diagnostic>, DeepFindings) {
        let mut files = Vec::new();
        let mut masked = Vec::new();
        let mut allows = Vec::new();
        let mut shallow = Vec::new();
        for (rel, crate_name, src) in inputs {
            let scanned = lexer::scan(src);
            let ctx = FileCtx {
                path: rel,
                crate_name,
                is_harness: false,
            };
            let lint = lint_scanned(&ctx, &scanned);
            shallow.extend(lint.diagnostics.clone());
            allows.push(lint.allows);
            files.push(FileUnit {
                rel: rel.to_string(),
                crate_name: crate_name.to_string(),
                is_harness: false,
                parsed: parse_file(&scanned.masked_lines),
            });
            masked.push(scanned.masked_lines);
        }
        let findings = deep_passes(
            &files,
            &masked,
            &mut allows,
            &shallow,
            &CrateDeps::default(),
        );
        (shallow, findings)
    }

    fn rules_of(d: &[Diagnostic]) -> Vec<&str> {
        d.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn laundered_wallclock_taints_public_caller() {
        let src = "\
fn stamp_ms() -> u64 {\n    std::time::SystemTime::now(); 0\n}\n\
fn format_header() -> u64 { stamp_ms() }\n\
pub fn emit_golden() -> u64 { format_header() }\n";
        let (shallow, deep) = run(&[("crates/x/src/lib.rs", "sim-x", src)]);
        // The line rule fires at the site…
        assert!(rules_of(&shallow).contains(&"no-wallclock"));
        // …and the taint pass flags the public caller with the chain.
        let taint: Vec<&Diagnostic> = deep
            .diagnostics
            .iter()
            .filter(|d| d.rule == "determinism-taint")
            .collect();
        assert_eq!(taint.len(), 1);
        assert!(taint[0]
            .message
            .contains("emit_golden -> format_header -> stamp_ms"));
        assert_eq!(taint[0].line, 5);
    }

    #[test]
    fn allowed_source_seeds_nothing() {
        let src = "\
// faasnap-lint: allow(no-unordered-iteration, only the count escapes; order never observed)\n\
fn tally() -> usize { std::collections::HashMap::<u32, u32>::new().len() }\n\
pub fn report() -> usize { tally() }\n";
        let (shallow, deep) = run(&[("crates/x/src/lib.rs", "sim-x", src)]);
        assert!(shallow.is_empty());
        assert!(
            rules_of(&deep.diagnostics).is_empty(),
            "{:?}",
            deep.diagnostics
        );
    }

    #[test]
    fn env_read_flagged_and_tainting() {
        let src = "\
fn knob() -> bool { std::env::var(\"X\").is_ok() }\n\
pub fn decide() -> bool { knob() }\n";
        let (_, deep) = run(&[("crates/x/src/lib.rs", "sim-x", src)]);
        let rules = rules_of(&deep.diagnostics);
        assert!(rules.contains(&"no-env-read"));
        assert!(rules.contains(&"determinism-taint"));
    }

    #[test]
    fn taint_crosses_crates_through_method_calls() {
        let low = "\
pub struct Clock;\n\
impl Clock {\n    pub fn read(&self) -> u64 {\n        std::time::Instant::now(); 0\n    }\n}\n";
        let high = "\
pub fn sample(c: &sim_low::Clock) -> u64 { c.read() }\n";
        let (_, deep) = run(&[
            ("crates/low/src/lib.rs", "sim-low", low),
            ("crates/high/src/lib.rs", "sim-high", high),
        ]);
        let taint: Vec<&Diagnostic> = deep
            .diagnostics
            .iter()
            .filter(|d| d.rule == "determinism-taint")
            .collect();
        assert!(
            taint
                .iter()
                .any(|d| d.message.contains("sample -> Clock::read")),
            "{taint:?}"
        );
    }

    #[test]
    fn panic_sites_counted_outside_tests() {
        let src = "\
pub fn risky(v: &[u32], x: Option<u32>) -> u32 {\n\
    if v.is_empty() { panic!(\"empty\") }\n\
    v[0] + x.expect(\"x\")\n\
}\n\
#[cfg(test)]\nmod tests {\n    fn t() { unreachable!() }\n}\n";
        let (_, deep) = run(&[("crates/x/src/lib.rs", "sim-x", src)]);
        // panic! + v[0] + .expect( — the unreachable! sits in cfg(test).
        assert_eq!(deep.panic_sites, 3);
    }

    #[test]
    fn panic_allow_exempts_site() {
        let src = "\
pub fn checked(v: &[u32]) -> u32 {\n\
    // faasnap-lint: allow(panic-path, length asserted by caller contract)\n\
    v[0]\n\
}\n";
        let (_, deep) = run(&[("crates/x/src/lib.rs", "sim-x", src)]);
        assert_eq!(deep.panic_sites, 0);
        assert!(rules_of(&deep.diagnostics).is_empty()); // allow is live, not dead
    }

    #[test]
    fn float_rules_fire_on_reachable_paths_only() {
        let src = "\
pub fn order(xs: &mut Vec<f64>) {\n\
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
}\n\
fn dead_helper(a: f64, b: f64) -> bool { a.partial_cmp(&b).is_some() }\n";
        let (_, deep) = run(&[("crates/x/src/lib.rs", "sim-x", src)]);
        let floats: Vec<&Diagnostic> = deep
            .diagnostics
            .iter()
            .filter(|d| d.rule == "float-determinism")
            .collect();
        // `order` is public → flagged; `dead_helper` unreachable → not.
        assert_eq!(floats.len(), 1);
        assert_eq!(floats[0].line, 2);
    }

    #[test]
    fn float_map_keys_flagged() {
        let src = "pub struct S { pub by_score: std::collections::BTreeMap<f64, u32> }\n";
        let (_, deep) = run(&[("crates/x/src/lib.rs", "sim-x", src)]);
        assert_eq!(rules_of(&deep.diagnostics), vec!["float-determinism"]);
    }

    #[test]
    fn dead_allow_detected() {
        let src = "\
// faasnap-lint: allow(no-wallclock, there used to be a clock here)\n\
pub fn fine() {}\n";
        let (_, deep) = run(&[("crates/x/src/lib.rs", "sim-x", src)]);
        assert_eq!(rules_of(&deep.diagnostics), vec!["dead-allow"]);
        assert_eq!(deep.diagnostics[0].line, 1);
    }

    #[test]
    fn taint_allow_suppresses_and_is_live() {
        let src = "\
fn stamp() -> u64 { std::time::SystemTime::now(); 0 }\n\
// faasnap-lint: allow(determinism-taint, diagnostic wrapper, output never golden)\n\
pub fn debug_dump() -> u64 { stamp() }\n";
        let (_, deep) = run(&[("crates/x/src/lib.rs", "sim-x", src)]);
        assert!(!rules_of(&deep.diagnostics).contains(&"determinism-taint"));
        assert!(!rules_of(&deep.diagnostics).contains(&"dead-allow"));
    }
}
