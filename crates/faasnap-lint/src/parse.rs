//! Token-tree parser over the masked source: items, not lines.
//!
//! The lexer ([`crate::lexer`]) blanks comments and literals; this module
//! tokenizes what survives and extracts the structure the deep passes
//! need — `fn` items with their body token ranges, `impl`/`trait` owners,
//! nested `mod`s, `use` imports, `#[cfg(test)]` gating, and visibility.
//! It is a recognizer for the workspace's own dialect of Rust, not a
//! general parser: items it does not understand are skipped token by
//! token, which degrades analysis precision but never aborts it
//! (conservatism lives downstream — unresolved calls taint widely).

use std::ops::Range;

/// One token of masked source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// Token payload.
    pub kind: Tok,
}

/// Token payload: identifier-ish words (identifiers, keywords, numeric
/// literals) or single punctuation characters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// `[A-Za-z0-9_]+`, with a leading `r#` raw-identifier prefix
    /// stripped (`r#type` tokenizes as the word `type`).
    Word(String),
    /// Any other non-whitespace character, one per token (`::` is two
    /// `:` tokens).
    Punct(char),
}

impl Tok {
    /// The word payload, if this is a word token.
    pub fn word(&self) -> Option<&str> {
        match self {
            Tok::Word(w) => Some(w.as_str()),
            Tok::Punct(_) => None,
        }
    }

    /// True if this token is the given punctuation character.
    pub fn is(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

/// Tokenizes masked source lines (see [`crate::lexer::Scanned`]).
pub fn tokenize(masked_lines: &[String]) -> Vec<Token> {
    let mut toks = Vec::new();
    for (idx, line) in masked_lines.iter().enumerate() {
        let lineno = idx as u32 + 1;
        let bytes = line.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let b = bytes[i];
            if b.is_ascii_whitespace() {
                i += 1;
            } else if b == b'_' || b.is_ascii_alphanumeric() {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let mut word = &line[start..i];
                // Raw identifier: the lexer leaves `r#name` intact; fold
                // it to `name` so rules match either spelling.
                if word == "r" && bytes.get(i) == Some(&b'#') {
                    let after = i + 1;
                    let mut j = after;
                    while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric())
                    {
                        j += 1;
                    }
                    if j > after {
                        word = &line[after..j];
                        i = j;
                    }
                }
                toks.push(Token {
                    line: lineno,
                    kind: Tok::Word(word.to_string()),
                });
            } else {
                // Masked regions are blanked to spaces, so every
                // remaining byte is ASCII punctuation from real code.
                toks.push(Token {
                    line: lineno,
                    kind: Tok::Punct(b as char),
                });
                i += 1;
            }
        }
    }
    toks
}

/// One `fn` item the parser extracted.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name (`r#` prefix folded away).
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Declared with `pub` (any form, including `pub(crate)`).
    pub is_pub: bool,
    /// Enclosing `impl`/`trait` type name, if any.
    pub self_type: Option<String>,
    /// Enclosing in-file module path (`["foo", "bar"]` for
    /// `mod foo { mod bar { … } }`).
    pub module: Vec<String>,
    /// True inside a `#[cfg(test)]`-gated item (directly attributed or
    /// via an enclosing test module).
    pub in_cfg_test: bool,
    /// True if the parameter list mentions `self`.
    pub has_self_param: bool,
    /// Token range of the body, excluding the outer braces. Empty for
    /// bodyless trait-method declarations.
    pub body: Range<usize>,
    /// 1-based line range [start, end] covered by the body tokens.
    pub body_lines: (u32, u32),
}

/// One local name introduced by a `use` declaration.
#[derive(Clone, Debug)]
pub struct Import {
    /// Name visible in this file (the last path segment, or the alias
    /// after `as`; `*` for glob imports).
    pub name: String,
    /// Full path segments, e.g. `["sim_core", "detmap", "DetMap"]`.
    pub path: Vec<String>,
}

/// Everything the parser extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// The token stream (referenced by [`FnItem::body`] ranges).
    pub tokens: Vec<Token>,
    /// All `fn` items, in source order.
    pub fns: Vec<FnItem>,
    /// All `use` imports.
    pub imports: Vec<Import>,
}

impl ParsedFile {
    /// The innermost function whose body covers `line`, if any. Bodies
    /// never overlap except through nesting the parser does not model,
    /// so "innermost" is the latest-starting covering body.
    pub fn fn_covering_line(&self, line: u32) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            let (lo, hi) = f.body_lines;
            if !f.body.is_empty() && lo <= line && line <= hi {
                match best {
                    Some(b) if self.fns[b].body_lines.0 >= lo => {}
                    _ => best = Some(i),
                }
            }
        }
        best
    }
}

/// Words that start statements/expressions where a following `(` or `{`
/// is grouping, not a call or struct body.
const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "match", "return", "break", "continue", "in", "for", "while", "loop", "let",
    "mut", "move", "as", "where", "dyn", "ref", "await", "yield",
];

/// True if `w` is a keyword that can precede `[` without indexing.
pub fn is_expr_keyword(w: &str) -> bool {
    EXPR_KEYWORDS.contains(&w)
}

struct Parser<'t> {
    toks: &'t [Token],
    pos: usize,
    out_fns: Vec<FnItem>,
    out_imports: Vec<Import>,
}

/// Parses a file's masked lines into items.
pub fn parse_file(masked_lines: &[String]) -> ParsedFile {
    let tokens = tokenize(masked_lines);
    let mut p = Parser {
        toks: &tokens,
        pos: 0,
        out_fns: Vec::new(),
        out_imports: Vec::new(),
    };
    p.items(&mut Vec::new(), None, false);
    ParsedFile {
        fns: p.out_fns,
        imports: p.out_imports,
        tokens,
    }
}

impl<'t> Parser<'t> {
    fn peek(&self) -> Option<&'t Tok> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn peek_at(&self, off: usize) -> Option<&'t Tok> {
        self.toks.get(self.pos + off).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos).map_or(0, |t| t.line)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn take_word(&mut self) -> Option<String> {
        match self.peek() {
            Some(Tok::Word(w)) => {
                let w = w.clone();
                self.bump();
                Some(w)
            }
            _ => None,
        }
    }

    /// Skips a balanced delimiter group starting at the current token
    /// (which must be `open`); returns the token range between the
    /// delimiters.
    fn skip_group(&mut self, open: char, close: char) -> Range<usize> {
        debug_assert!(self.peek().is_some_and(|t| t.is(open)));
        self.bump();
        let start = self.pos;
        let mut depth = 1u32;
        while let Some(t) = self.peek() {
            if t.is(open) {
                depth += 1;
            } else if t.is(close) {
                depth -= 1;
                if depth == 0 {
                    let range = start..self.pos;
                    self.bump();
                    return range;
                }
            }
            self.bump();
        }
        start..self.pos
    }

    /// Skips a balanced `<…>` generic group. Angle brackets are not real
    /// delimiters (`a < b` is comparison), but in the item positions
    /// this is called from — after `fn name`, after `impl` — `<` always
    /// opens generics. `->` inside (closure/fn-pointer types) is handled
    /// by ignoring `>` directly after `-`.
    fn skip_angles(&mut self) {
        debug_assert!(self.peek().is_some_and(|t| t.is('<')));
        let mut depth = 0i64;
        let mut prev_dash = false;
        while let Some(t) = self.peek() {
            if t.is('<') {
                depth += 1;
            } else if t.is('>') && !prev_dash {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            prev_dash = t.is('-');
            self.bump();
        }
    }

    /// Skips one `#[…]` / `#![…]` attribute; reports whether it is
    /// exactly-ish `cfg(test)` (any `cfg` attribute naming `test`).
    fn skip_attribute(&mut self) -> bool {
        debug_assert!(self.peek().is_some_and(|t| t.is('#')));
        self.bump();
        if self.peek().is_some_and(|t| t.is('!')) {
            self.bump();
        }
        if !self.peek().is_some_and(|t| t.is('[')) {
            return false;
        }
        let range = self.skip_group('[', ']');
        let words: Vec<&str> = self.toks[range]
            .iter()
            .filter_map(|t| t.kind.word())
            .collect();
        words.first() == Some(&"cfg") && words.contains(&"test")
    }

    /// Parses a `use` tree after the `use` keyword, emitting imports.
    fn parse_use(&mut self) {
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(&mut prefix);
        // Consume the trailing `;` if present.
        if self.peek().is_some_and(|t| t.is(';')) {
            self.bump();
        }
    }

    fn use_tree(&mut self, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        loop {
            match self.peek() {
                Some(Tok::Word(w)) => {
                    if w == "as" {
                        self.bump();
                        if let Some(alias) = self.take_word() {
                            self.out_imports.push(Import {
                                name: alias,
                                path: prefix.clone(),
                            });
                            prefix.truncate(depth_at_entry.min(prefix.len()));
                            // The caller handles `,` / `}` / `;`.
                            if !self.finish_segment(prefix, depth_at_entry) {
                                return;
                            }
                        }
                    } else {
                        prefix.push(w.clone());
                        self.bump();
                        if !self.step_after_segment(prefix, depth_at_entry) {
                            return;
                        }
                    }
                }
                Some(t) if t.is('*') => {
                    self.bump();
                    self.out_imports.push(Import {
                        name: "*".to_string(),
                        path: prefix.clone(),
                    });
                    if !self.finish_segment(prefix, depth_at_entry) {
                        return;
                    }
                }
                Some(t) if t.is('{') => {
                    self.bump();
                    self.use_tree(prefix);
                    if !self.finish_segment(prefix, depth_at_entry) {
                        return;
                    }
                }
                _ => return,
            }
        }
    }

    /// After a path segment: `::` continues the path, anything else ends
    /// the current leaf. Returns false when the enclosing tree is done.
    fn step_after_segment(&mut self, prefix: &mut Vec<String>, depth_at_entry: usize) -> bool {
        if self.peek().is_some_and(|t| t.is(':')) && self.peek_at(1).is_some_and(|t| t.is(':')) {
            self.bump();
            self.bump();
            return true;
        }
        if self.peek().and_then(|t| t.word()) == Some("as") {
            // Alias ahead: keep the prefix; the main loop emits it.
            return true;
        }
        // Leaf without alias: the visible name is the last segment.
        if let Some(last) = prefix.last().cloned() {
            self.out_imports.push(Import {
                name: last,
                path: prefix.clone(),
            });
        }
        prefix.truncate(depth_at_entry);
        self.finish_segment(prefix, depth_at_entry)
    }

    /// Handles `,` (next leaf in a group) and `}` / `;` (end of group /
    /// declaration). Returns false when the current tree level is done.
    fn finish_segment(&mut self, prefix: &mut Vec<String>, depth_at_entry: usize) -> bool {
        prefix.truncate(depth_at_entry);
        match self.peek() {
            Some(t) if t.is(',') => {
                self.bump();
                true
            }
            Some(t) if t.is('}') => {
                self.bump();
                false
            }
            _ => false,
        }
    }

    /// Parses items until the closing `}` of the current scope (or EOF).
    fn items(&mut self, module: &mut Vec<String>, self_type: Option<&str>, in_cfg_test: bool) {
        let mut pending_pub = false;
        let mut pending_cfg_test = false;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Punct('#') => {
                    pending_cfg_test |= self.skip_attribute();
                }
                Tok::Punct('}') => {
                    self.bump();
                    return;
                }
                Tok::Punct('{') => {
                    // Stray block at item level (e.g. a const body the
                    // scanner dropped us into): skip it wholesale.
                    self.skip_group('{', '}');
                }
                Tok::Punct(_) => self.bump(),
                Tok::Word(w) => match w.as_str() {
                    "pub" => {
                        self.bump();
                        if self.peek().is_some_and(|t| t.is('(')) {
                            self.skip_group('(', ')');
                        }
                        pending_pub = true;
                    }
                    "use" => {
                        self.bump();
                        self.parse_use();
                        pending_pub = false;
                        pending_cfg_test = false;
                    }
                    "mod" => {
                        self.bump();
                        let name = self.take_word().unwrap_or_default();
                        if self.peek().is_some_and(|t| t.is('{')) {
                            self.bump();
                            module.push(name);
                            self.items(module, self_type, in_cfg_test || pending_cfg_test);
                            module.pop();
                        }
                        pending_pub = false;
                        pending_cfg_test = false;
                    }
                    "fn" => {
                        self.bump();
                        self.parse_fn(
                            module,
                            self_type,
                            pending_pub,
                            in_cfg_test || pending_cfg_test,
                        );
                        pending_pub = false;
                        pending_cfg_test = false;
                    }
                    "impl" => {
                        self.bump();
                        self.parse_impl(module, in_cfg_test || pending_cfg_test);
                        pending_pub = false;
                        pending_cfg_test = false;
                    }
                    "trait" => {
                        self.bump();
                        let name = self.take_word().unwrap_or_default();
                        self.skip_to_body_brace();
                        if self.peek().is_some_and(|t| t.is('{')) {
                            self.bump();
                            self.items(module, Some(&name), in_cfg_test || pending_cfg_test);
                        }
                        pending_pub = false;
                        pending_cfg_test = false;
                    }
                    "macro_rules" => {
                        self.bump(); // `macro_rules`
                        if self.peek().is_some_and(|t| t.is('!')) {
                            self.bump();
                        }
                        self.take_word(); // macro name
                        if self.peek().is_some_and(|t| t.is('{')) {
                            self.skip_group('{', '}');
                        }
                        pending_pub = false;
                        pending_cfg_test = false;
                    }
                    "const" | "static" | "type" | "struct" | "enum" | "union" | "extern" => {
                        self.bump();
                        // `const fn` / `extern "C" fn`: fall through to
                        // the next loop turn, which sees `fn`.
                        if self.peek().and_then(|t| t.word()) == Some("fn") {
                            continue;
                        }
                        self.skip_item_rest();
                        pending_pub = false;
                        pending_cfg_test = false;
                    }
                    _ => {
                        self.bump();
                    }
                },
            }
        }
    }

    /// Skips a non-fn item's remainder: to the `;` terminator or through
    /// one balanced `{…}` body, whichever comes first at top depth.
    fn skip_item_rest(&mut self) {
        while let Some(t) = self.peek() {
            if t.is(';') {
                self.bump();
                return;
            }
            if t.is('{') {
                self.skip_group('{', '}');
                return;
            }
            if t.is('(') {
                self.skip_group('(', ')');
            } else if t.is('[') {
                self.skip_group('[', ']');
            } else if t.is('<') {
                self.skip_angles();
            } else if t.is('}') {
                return; // end of enclosing scope; don't consume
            } else {
                self.bump();
            }
        }
    }

    /// After `impl`: optional generics, the (possibly `Trait for`) type
    /// path, then the brace-delimited item list with `self_type` set.
    fn parse_impl(&mut self, module: &mut Vec<String>, in_cfg_test: bool) {
        if self.peek().is_some_and(|t| t.is('<')) {
            self.skip_angles();
        }
        let mut last_word: Option<String> = None;
        loop {
            match self.peek() {
                Some(Tok::Word(w)) if w == "for" => {
                    self.bump();
                    last_word = None; // type after `for` is the self type
                }
                Some(Tok::Word(w)) if w == "where" => {
                    self.bump();
                    self.skip_to_body_brace();
                    break;
                }
                Some(Tok::Word(w)) => {
                    last_word = Some(w.clone());
                    self.bump();
                }
                Some(t) if t.is('<') => self.skip_angles(),
                Some(t) if t.is('{') => break,
                Some(t) if t.is(':') || t.is('&') || t.is('\'') => self.bump(),
                _ => break,
            }
        }
        if self.peek().is_some_and(|t| t.is('{')) {
            self.bump();
            self.items(module, last_word.as_deref(), in_cfg_test);
        }
    }

    /// Advances to the next `{` at the current nesting level, balancing
    /// parens/brackets/angles on the way (for where clauses and return
    /// types). Stops before the brace.
    fn skip_to_body_brace(&mut self) {
        while let Some(t) = self.peek() {
            if t.is('{') || t.is(';') || t.is('}') {
                return;
            }
            if t.is('(') {
                self.skip_group('(', ')');
            } else if t.is('[') {
                self.skip_group('[', ']');
            } else if t.is('<') {
                self.skip_angles();
            } else {
                self.bump();
            }
        }
    }

    /// After the `fn` keyword: name, generics, params, return type, then
    /// the body (or `;` for a bodyless trait method).
    fn parse_fn(
        &mut self,
        module: &[String],
        self_type: Option<&str>,
        is_pub: bool,
        in_cfg_test: bool,
    ) {
        let line = self.line();
        let Some(name) = self.take_word() else {
            return;
        };
        if self.peek().is_some_and(|t| t.is('<')) {
            self.skip_angles();
        }
        let mut has_self_param = false;
        if self.peek().is_some_and(|t| t.is('(')) {
            let params = self.skip_group('(', ')');
            has_self_param = self.toks[params]
                .iter()
                .any(|t| t.kind.word() == Some("self"));
        }
        self.skip_to_body_brace();
        let body = if self.peek().is_some_and(|t| t.is('{')) {
            self.skip_group('{', '}')
        } else {
            if self.peek().is_some_and(|t| t.is(';')) {
                self.bump();
            }
            self.pos..self.pos
        };
        let body_lines = if body.is_empty() {
            (line, line)
        } else {
            (self.toks[body.start].line, self.toks[body.end - 1].line)
        };
        self.out_fns.push(FnItem {
            name,
            line,
            is_pub,
            self_type: self_type.map(str::to_string),
            module: module.to_vec(),
            in_cfg_test,
            has_self_param,
            body,
            body_lines,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lexer::scan(src).masked_lines)
    }

    #[test]
    fn plain_fn_with_body() {
        let p = parse("pub fn hello(x: u32) -> u32 {\n    x + 1\n}\n");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "hello");
        assert!(f.is_pub);
        assert!(!f.has_self_param);
        assert_eq!(f.line, 1);
        assert_eq!(f.body_lines, (2, 2));
    }

    #[test]
    fn impl_methods_get_self_type() {
        let p = parse(
            "struct Host;\n\
             impl Host {\n    pub fn submit(&self) {}\n    fn drain(&mut self, n: u32) {}\n}\n\
             impl Clone for Host {\n    fn clone(&self) -> Host { Host }\n}\n",
        );
        let names: Vec<(&str, Option<&str>, bool)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_type.as_deref(), f.has_self_param))
            .collect();
        assert_eq!(
            names,
            vec![
                ("submit", Some("Host"), true),
                ("drain", Some("Host"), true),
                ("clone", Some("Host"), true),
            ]
        );
    }

    #[test]
    fn generics_and_where_clauses() {
        let p = parse(
            "impl<K: Ord, V> Table<K, V> {\n\
                 pub fn get<Q>(&self, q: &Q) -> Option<&V> where K: Borrow<Q>, Q: Ord {\n\
                     None\n    }\n}\n\
             fn free<T: Into<Vec<u8>>>(t: T) -> impl Iterator<Item = u8> { t.into().into_iter() }\n",
        );
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["get", "free"]);
        assert_eq!(p.fns[0].self_type.as_deref(), Some("Table"));
    }

    #[test]
    fn cfg_test_marks_fns() {
        let p = parse(
            "fn live() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn check() { live(); }\n}\n\
             #[cfg(test)]\nfn helper() {}\n\
             #[cfg(feature = \"x\")]\nfn gated() {}\n",
        );
        let flags: Vec<(&str, bool)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.in_cfg_test))
            .collect();
        assert_eq!(
            flags,
            vec![
                ("live", false),
                ("check", true),
                ("helper", true),
                ("gated", false),
            ]
        );
        assert_eq!(p.fns[1].module, vec!["tests".to_string()]);
    }

    #[test]
    fn use_trees_flatten() {
        let p = parse(
            "use std::collections::BTreeMap;\n\
             use sim_core::{rng::Prng, time::SimTime as T};\n\
             use faasnap_obs::*;\n",
        );
        let imports: Vec<(String, String)> = p
            .imports
            .iter()
            .map(|i| (i.name.clone(), i.path.join("::")))
            .collect();
        assert_eq!(
            imports,
            vec![
                ("BTreeMap".into(), "std::collections::BTreeMap".into()),
                ("Prng".into(), "sim_core::rng::Prng".into()),
                ("T".into(), "sim_core::time::SimTime".into()),
                ("*".into(), "faasnap_obs".into()),
            ]
        );
    }

    #[test]
    fn macro_bodies_are_opaque() {
        let p = parse(
            "macro_rules! gen {\n    ($n:ident) => { fn $n() { panic!(\"in macro\") } };\n}\n\
             fn after() {}\n",
        );
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["after"]);
    }

    #[test]
    fn const_fn_and_bodyless_trait_methods() {
        let p = parse(
            "pub const fn zero() -> u32 { 0 }\n\
             trait Disk {\n    fn submit(&self, op: u32);\n    fn len(&self) -> u64 { 0 }\n}\n",
        );
        let named: Vec<(&str, bool)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.body.is_empty()))
            .collect();
        assert_eq!(
            named,
            vec![("zero", false), ("submit", true), ("len", false)]
        );
        assert_eq!(p.fns[1].self_type.as_deref(), Some("Disk"));
    }

    #[test]
    fn raw_identifiers_fold() {
        let p = parse("fn r#type() {}\n");
        assert_eq!(p.fns[0].name, "type");
    }

    #[test]
    fn fn_covering_line_picks_innermost() {
        let p = parse("fn outer() {\n    let x = 1;\n    let y = 2;\n}\nfn next() {\n    3;\n}\n");
        assert_eq!(
            p.fn_covering_line(2).map(|i| p.fns[i].name.as_str()),
            Some("outer")
        );
        assert_eq!(
            p.fn_covering_line(6).map(|i| p.fns[i].name.as_str()),
            Some("next")
        );
        assert_eq!(p.fn_covering_line(40), None);
    }

    #[test]
    fn nested_raw_strings_do_not_break_items() {
        let src = "fn a() {\n    let s = r##\"outer r#\"inner\"# end\"##;\n    let _ = s;\n}\nfn b() {}\n";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
