//! Comment- and string-aware source scanner.
//!
//! The rule engine matches plain text, so it must never see the inside of
//! a comment or a string literal (`"HashMap"` in a log message is not a
//! determinism hazard). [`scan`] walks the byte stream once and produces:
//!
//! * `masked_lines` — the source split into lines, with the contents of
//!   comments, string literals (plain, raw, byte), and character literals
//!   blanked to spaces. Braces and code structure survive, so downstream
//!   passes can still balance `{`/`}` (used for `#[cfg(test)]` regions).
//! * `comments` — every `//` line comment with its 1-based starting line,
//!   for directive parsing.
//!
//! The scanner is a heuristic lexer, not a full Rust parser: it handles
//! nested block comments, escapes, `r#"…"#` raw strings with any number
//! of hashes, byte strings/chars, and the character-literal vs. lifetime
//! ambiguity (`'a'` vs. `<'a>`). Pathological token streams a proc macro
//! might emit are out of scope — the workspace is the input, not
//! arbitrary Rust.

/// One `//` line comment (including `///` and `//!` doc comments).
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text including the leading slashes.
    pub text: String,
}

/// Result of scanning one source file.
#[derive(Clone, Debug)]
pub struct Scanned {
    /// Source lines with comment/string/char contents blanked.
    pub masked_lines: Vec<String>,
    /// Line comments, in file order.
    pub comments: Vec<Comment>,
}

fn blank(masked: &mut [u8], from: usize, to: usize) {
    for b in &mut masked[from..to] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Scans an escape-aware string literal starting at `start` (which must
/// index a `"`); returns the index one past the closing quote and bumps
/// `line` across embedded newlines.
fn skip_string(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// If a character/byte literal starts at `start` (which indexes a `'`),
/// returns the index one past its closing quote; `None` means `start` is
/// a lifetime tick. Character literals never span lines.
fn char_literal_end(bytes: &[u8], start: usize) -> Option<usize> {
    let next = *bytes.get(start + 1)?;
    if next == b'\\' {
        // Escaped: skip the char after the backslash, then scan to the
        // closing quote (covers \n, \', \\, \x41, \u{…}).
        let mut i = start + 3;
        while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
            i += 1;
        }
        return (bytes.get(i) == Some(&b'\'')).then_some(i + 1);
    }
    if next == b'\'' || next == b'\n' {
        return None; // '' is not a literal; tick at line end is a lifetime
    }
    // Unescaped: one char (1–4 UTF-8 bytes) then the closing quote.
    let end = (start + 6).min(bytes.len());
    for (i, &b) in bytes.iter().enumerate().take(end).skip(start + 2) {
        match b {
            b'\'' => return Some(i + 1),
            b'\n' => return None,
            _ => {}
        }
    }
    None
}

/// Scans `source`, producing masked lines and the comment list.
pub fn scan(source: &str) -> Scanned {
    let bytes = source.as_bytes();
    let mut masked = bytes.to_vec();
    let mut comments = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&bytes[start..i]).into_owned(),
                });
                blank(&mut masked, start, i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut masked, start, i);
            }
            b'"' => {
                let end = skip_string(bytes, i, &mut line);
                blank(&mut masked, i, end);
                i = end;
            }
            b'r' | b'b' if i == 0 || !is_ident_byte(bytes[i - 1]) => {
                // Candidate raw string (r"…", r#"…"#), byte string (b"…",
                // br#"…"#), or byte char (b'x').
                let mut j = i;
                if bytes[j] == b'b' {
                    j += 1;
                }
                let mut k = j;
                if bytes.get(k) == Some(&b'r') {
                    k += 1;
                }
                let mut hashes = 0usize;
                while bytes.get(k + hashes) == Some(&b'#') {
                    hashes += 1;
                }
                let is_raw = k > j && bytes.get(k + hashes) == Some(&b'"');
                if is_raw {
                    // Raw string: ends at `"` followed by `hashes` hashes.
                    let mut p = k + hashes + 1;
                    loop {
                        match bytes.get(p) {
                            None => break,
                            Some(&b'\n') => {
                                line += 1;
                                p += 1;
                            }
                            Some(&b'"')
                                if bytes[p + 1..].len() >= hashes
                                    && bytes[p + 1..p + 1 + hashes].iter().all(|&h| h == b'#') =>
                            {
                                p += 1 + hashes;
                                break;
                            }
                            Some(_) => p += 1,
                        }
                    }
                    blank(&mut masked, i, p);
                    i = p;
                } else if bytes[i] == b'b' && bytes.get(j) == Some(&b'"') {
                    let end = skip_string(bytes, j, &mut line);
                    blank(&mut masked, i, end);
                    i = end;
                } else if bytes[i] == b'b' && bytes.get(j) == Some(&b'\'') {
                    match char_literal_end(bytes, j) {
                        Some(end) => {
                            blank(&mut masked, i, end);
                            i = end;
                        }
                        None => i = j + 1,
                    }
                } else {
                    i += 1;
                }
            }
            b'\'' => match char_literal_end(bytes, i) {
                Some(end) => {
                    blank(&mut masked, i, end);
                    i = end;
                }
                None => i += 1,
            },
            _ => i += 1,
        }
    }

    let masked_lines = String::from_utf8_lossy(&masked)
        .lines()
        .map(str::to_owned)
        .collect();
    Scanned {
        masked_lines,
        comments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(src: &str) -> String {
        scan(src).masked_lines.join("\n")
    }

    #[test]
    fn line_comments_blanked_and_collected() {
        let s = scan("let x = 1; // HashMap here\nlet y = 2;");
        assert!(!s.masked_lines[0].contains("HashMap"));
        assert!(s.masked_lines[0].contains("let x = 1;"));
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 1);
        assert!(s.comments[0].text.contains("HashMap here"));
    }

    #[test]
    fn block_comments_nested() {
        let m = masked("a /* one /* two */ HashMap */ b");
        assert!(!m.contains("HashMap"));
        assert!(m.starts_with('a') && m.ends_with('b'));
    }

    #[test]
    fn strings_blanked_with_escapes() {
        let m = masked(r#"let s = "say \"HashMap\" loudly"; let t = 1;"#);
        assert!(!m.contains("HashMap"));
        assert!(m.contains("let t = 1;"));
    }

    #[test]
    fn raw_and_byte_strings_blanked() {
        let m = masked("let a = r#\"raw \"HashMap\" inside\"#; let b = b\"HashSet\"; done();");
        assert!(!m.contains("HashMap"));
        assert!(!m.contains("HashSet"));
        assert!(m.contains("done();"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let m = masked("fn f<'a>(x: &'a str) -> char { let c = 'x'; let d = '\\n'; c }");
        assert!(m.contains("<'a>"), "lifetime survives: {m}");
        assert!(m.contains("&'a str"));
        assert!(!m.contains("'x'"));
    }

    #[test]
    fn multiline_string_keeps_line_numbers() {
        let s = scan("let a = \"one\ntwo\nthree\";\n// after\nlet b = 2;");
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 4);
        assert_eq!(s.masked_lines.len(), 5);
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let m = masked("let r#type = 1; let x = r#type;");
        assert!(m.contains("r#type"));
    }

    #[test]
    fn braces_survive_masking() {
        let m = masked("fn f() { let s = \"{ not a brace }\"; }");
        let opens = m.matches('{').count();
        let closes = m.matches('}').count();
        assert_eq!(opens, 1);
        assert_eq!(closes, 1);
    }
}
