//! Dev helper: per-file unwrap-budget usage.
fn main() {
    let root = faasnap_lint::find_workspace_root(&std::env::current_dir().unwrap()).unwrap();
    let ws = faasnap_lint::walk::discover(&root).unwrap();
    let mut rows = Vec::new();
    for f in &ws.files {
        let src = std::fs::read_to_string(&f.abs).unwrap();
        let ctx = faasnap_lint::FileCtx {
            path: &f.rel,
            crate_name: &f.crate_name,
            is_harness: f.is_harness,
        };
        let lint = faasnap_lint::lint_source(&ctx, &src);
        if lint.unwrap_sites > 0 {
            rows.push((lint.unwrap_sites, f.rel.clone()));
        }
    }
    rows.sort();
    for (n, p) in rows {
        println!("{n:>3} {p}");
    }
}
