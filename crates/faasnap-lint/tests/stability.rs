//! Property: the deep lint report is byte-stable — across repeated runs
//! on identical input and across any permutation of the input file
//! order. Goldens and the check-script JSON diff both assume this.

use proptest::prelude::*;
use proptest::test_runner::TestRng;

use faasnap_lint::{lint_sources_deep, SourceUnit};

/// A small workspace with enough structure to exercise every deep pass:
/// a taint chain, an env read, a float hazard, panic paths, and one
/// live plus one dead allow.
fn units() -> Vec<SourceUnit> {
    let mk = |rel: &str, source: &str| SourceUnit {
        rel: rel.to_string(),
        crate_name: "sim-fixture".to_string(),
        is_harness: false,
        is_crate_root: false,
        source: source.to_string(),
    };
    vec![
        mk(
            "a/clock.rs",
            "fn stamp() -> u64 { std::time::SystemTime::now(); 0 }\n\
             pub fn emit() -> u64 { stamp() }\n",
        ),
        mk(
            "b/env.rs",
            "fn knob() -> bool { std::env::var(\"K\").is_ok() }\n\
             pub fn decide() -> bool { knob() }\n",
        ),
        mk(
            "c/float.rs",
            "pub fn rank(xs: &mut [f64]) {\n\
                 xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n\
             }\n",
        ),
        mk(
            "d/panic.rs",
            "pub fn risky(v: &[u32]) -> u32 { v[0] }\n\
             // faasnap-lint: allow(no-wallclock, nothing here reads a clock anymore)\n\
             pub fn quiet() -> u32 { 9 }\n",
        ),
        mk(
            "e/allowed.rs",
            "pub fn counted() -> usize {\n\
                 // faasnap-lint: allow(no-unordered-iteration, only the count escapes)\n\
                 std::collections::HashSet::<u32>::new().len()\n\
             }\n",
        ),
    ]
}

fn shuffled(mut v: Vec<SourceUnit>, seed: u64) -> Vec<SourceUnit> {
    let mut rng = TestRng::new(seed);
    for i in (1..v.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        v.swap(i, j);
    }
    v
}

#[test]
fn repeated_runs_are_byte_identical() {
    let base = lint_sources_deep(&units()).to_json();
    for _ in 0..5 {
        assert_eq!(lint_sources_deep(&units()).to_json(), base);
    }
    // Sanity: the run actually found things — stability of an empty
    // report would prove nothing.
    assert!(base.contains("determinism-taint"));
    assert!(base.contains("dead-allow"));
}

proptest! {
    /// Any discovery order yields the same bytes, diagnostics and
    /// budgets included.
    #[test]
    fn deep_report_stable_under_file_order(seed in 0u64..u64::MAX) {
        let canonical = lint_sources_deep(&units()).to_json();
        let permuted = lint_sources_deep(&shuffled(units(), seed)).to_json();
        prop_assert_eq!(permuted, canonical);
    }
}
