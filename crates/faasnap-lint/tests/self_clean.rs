//! The workspace must satisfy its own linter: zero diagnostics, and the
//! unwrap ratchet at or under budget. This is the test-suite twin of the
//! `scripts/check.sh` gate.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root is two levels above the crate");
    let report = faasnap_lint::lint_workspace(root).expect("lint runs on the real workspace");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint findings:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.unwrap_count <= report.unwrap_budget,
        "unwrap-budget ratchet exceeded: {} sites > budget {}",
        report.unwrap_count,
        report.unwrap_budget
    );
}
