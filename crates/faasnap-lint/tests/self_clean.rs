//! The workspace must satisfy its own linter — shallow *and* deep: zero
//! diagnostics, and both ratchets at or under budget. This is the
//! test-suite twin of the `scripts/check.sh` gate.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root is two levels above the crate")
}

fn assert_clean(report: &faasnap_lint::Report) {
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint findings:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.unwrap_count <= report.unwrap_budget,
        "unwrap-budget ratchet exceeded: {} sites > budget {}",
        report.unwrap_count,
        report.unwrap_budget
    );
}

#[test]
fn workspace_is_lint_clean() {
    let report =
        faasnap_lint::lint_workspace(workspace_root()).expect("lint runs on the real workspace");
    assert_clean(&report);
}

#[test]
fn workspace_is_deep_lint_clean() {
    let report = faasnap_lint::lint_workspace_deep(workspace_root())
        .expect("deep lint runs on the real workspace");
    assert_clean(&report);
    assert!(
        report.panic_path_count <= report.panic_path_budget,
        "panic-path ratchet exceeded: {} sites > budget {}",
        report.panic_path_count,
        report.panic_path_budget
    );
}
