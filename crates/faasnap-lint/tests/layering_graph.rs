//! Layering end to end on a synthetic workspace: manifests go in as TOML
//! text, violations come out as diagnostics anchored to the offending
//! dependency line.

use faasnap_lint::layering::{check_layering, parse_manifest, Manifest};

fn manifest(name: &str, deps: &[&str]) -> Manifest {
    let mut text = format!("[package]\nname = \"{name}\"\nversion = \"0.1.0\"\n\n[dependencies]\n");
    for d in deps {
        text.push_str(&format!("{d}.workspace = true\n"));
    }
    parse_manifest(&format!("crates/{name}/Cargo.toml"), &text).expect("synthetic manifest parses")
}

#[test]
fn real_shape_passes_and_violations_are_pinpointed() {
    // The shape of the actual workspace, condensed.
    let clean = vec![
        manifest("sim-core", &[]),
        manifest("faasnap-obs", &["sim-core"]),
        manifest("sim-mm", &["sim-core", "faasnap-obs"]),
        manifest("sim-vm", &["sim-core", "sim-mm"]),
        manifest("faasnap", &["sim-core", "sim-vm"]),
        manifest("faasnap-daemon", &["faasnap"]),
        manifest("faasnap-cluster", &["faasnap-daemon", "faasnap-lint"]),
        manifest("faasnap-bench", &["faasnap-daemon"]),
        manifest("faasnap-lint", &[]),
    ];
    assert!(check_layering(&clean).is_empty());

    // Now poison it: the substrate reaches up into the runtime. That one
    // edge trips three rules at once — substrate-reaches-up, the daemon
    // whitelist, and (because faasnap ultimately sits on sim-mm) a cycle.
    let mut dirty = clean;
    dirty[2] = manifest("sim-mm", &["sim-core", "faasnap-obs", "faasnap-daemon"]);
    let diags = check_layering(&dirty);
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "layering"));
    assert!(diags.iter().all(|d| d.path == "crates/sim-mm/Cargo.toml"));
    assert!(diags.iter().any(|d| d.message.contains("dependency cycle")));
    // The two edge-level findings point at the offending dependency line:
    // [package] header + 2 keys + blank + [dependencies] header, then the
    // third dependency: line 8.
    assert_eq!(diags.iter().filter(|d| d.line == 8).count(), 2);
}

#[test]
fn obs_exception_does_not_extend_to_other_faasnap_crates() {
    let diags = check_layering(&[
        manifest("faasnap", &[]),
        manifest("sim-storage", &["faasnap"]),
    ]);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("substrate"));
}

#[test]
fn cycle_in_synthetic_graph_is_reported_once() {
    let diags = check_layering(&[
        manifest("faasnap", &["faasnap-daemon"]),
        manifest("faasnap-daemon", &["faasnap"]),
    ]);
    let cycles: Vec<_> = diags
        .iter()
        .filter(|d| d.message.contains("dependency cycle"))
        .collect();
    assert_eq!(cycles.len(), 1, "{diags:?}");
}
