//! Directive semantics end to end: coverage of the preceding and trailing
//! placements, the one-line reach limit, mandatory reasons, and unknown
//! rule ids. The hazards and directives below live inside Rust string
//! literals, so the self-scan of this very file masks them out.

use faasnap_lint::{lint_source, FileCtx};

fn ctx() -> FileCtx<'static> {
    FileCtx {
        path: "crates/sim-x/src/lib.rs",
        crate_name: "sim-x",
        is_harness: false,
    }
}

fn rules_of(src: &str) -> Vec<&'static str> {
    lint_source(&ctx(), src)
        .diagnostics
        .iter()
        .map(|d| d.rule)
        .collect()
}

#[test]
fn trailing_directive_suppresses_its_own_line() {
    let src = "fn f(d: std::time::Duration) {\n    \
               std::thread::sleep(d); // faasnap-lint: allow(no-threads, trailing form)\n}\n";
    assert!(rules_of(src).is_empty());
}

#[test]
fn preceding_directive_suppresses_the_next_line() {
    let src = "// faasnap-lint: allow(no-unordered-iteration, preceding form)\n\
               use std::collections::HashMap;\n";
    assert!(rules_of(src).is_empty());
}

#[test]
fn directive_reach_stops_after_one_line() {
    let src = "// faasnap-lint: allow(no-unordered-iteration, too far away)\n\
               fn f() {}\n\
               use std::collections::HashMap;\n";
    assert_eq!(rules_of(src), vec!["no-unordered-iteration"]);
}

#[test]
fn directive_only_covers_its_named_rule() {
    let src = "// faasnap-lint: allow(no-threads, wrong rule for the line below)\n\
               use std::collections::HashMap;\n";
    assert_eq!(rules_of(src), vec!["no-unordered-iteration"]);
}

#[test]
fn missing_reason_is_malformed_and_suppresses_nothing() {
    let src = "// faasnap-lint: allow(no-wallclock)\n\
               fn f() { let _ = std::time::Instant::now(); }\n";
    assert_eq!(rules_of(src), vec!["malformed-allow", "no-wallclock"]);
}

#[test]
fn unknown_rule_id_is_malformed() {
    let src = "// faasnap-lint: allow(no-such-rule, a reason cannot rescue it)\n";
    assert_eq!(rules_of(src), vec!["malformed-allow"]);
}

#[test]
fn allow_exempts_unwrap_sites_from_the_budget() {
    let covered = "// faasnap-lint: allow(unwrap-budget, provably infallible here)\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let uncovered = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(lint_source(&ctx(), covered).unwrap_sites, 0);
    assert_eq!(lint_source(&ctx(), uncovered).unwrap_sites, 1);
}
