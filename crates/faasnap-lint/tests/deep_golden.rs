//! Golden test over the deep-analysis fixtures in `tests/fixtures/deep/`.
//!
//! Each fixture file becomes one source unit of a crate named
//! `sim-fixture` and the whole set runs through the full deep pipeline
//! (parse → call graph → taint → panic/float/dead-allow). Both the text
//! diagnostics and the `--json` rendering are pinned byte-for-byte.
//! Regenerate after an intentional analyzer change with
//! `FAASNAP_BLESS=1 cargo test -p faasnap-lint` and review the diff.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use faasnap_lint::{lint_sources_deep, SourceUnit};

fn deep_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/deep")
}

fn load_units() -> Vec<SourceUnit> {
    let dir = deep_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("read deep fixtures dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .into_string()
                .expect("utf-8 fixture name")
        })
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no fixtures in {}", dir.display());
    names
        .iter()
        .map(|name| SourceUnit {
            rel: format!("fixtures/deep/{name}"),
            crate_name: "sim-fixture".to_string(),
            is_harness: false,
            is_crate_root: false,
            source: std::fs::read_to_string(dir.join(name)).expect("read fixture"),
        })
        .collect()
}

fn check_golden(file: &str, actual: &str) {
    let golden = deep_dir().join(file);
    if std::env::var_os("FAASNAP_BLESS").is_some() {
        std::fs::write(&golden, actual).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden).unwrap_or_else(|_| {
        panic!("tests/fixtures/deep/{file} missing; run once with FAASNAP_BLESS=1")
    });
    assert_eq!(
        actual, expected,
        "deep fixture output drifted ({file}); if intentional, rerun with FAASNAP_BLESS=1 \
         and review"
    );
}

#[test]
fn deep_fixtures_match_golden() {
    let report = lint_sources_deep(&load_units());
    let mut text = String::new();
    for d in &report.diagnostics {
        writeln!(text, "{d}").expect("write to string");
    }
    writeln!(
        text,
        "unwrap_sites={} panic_paths={}",
        report.unwrap_count, report.panic_path_count
    )
    .expect("write to string");
    check_golden("expected.golden", &text);
    check_golden("expected.json", &report.to_json());
}

/// The acceptance chain in one assertion, independent of the golden:
/// the fixture where a wrapper launders `SystemTime::now()` into a
/// golden-emitting public caller must be flagged with the full chain.
#[test]
fn laundering_chain_is_flagged() {
    let report = lint_sources_deep(&load_units());
    let taint: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "determinism-taint" && d.path.ends_with("launder.rs"))
        .collect();
    assert_eq!(taint.len(), 1, "{:?}", report.diagnostics);
    assert!(
        taint[0]
            .message
            .contains("emit_summary -> header_line -> stamp_ns"),
        "chain missing from: {}",
        taint[0].message
    );
}
