//! Deliberately dirty fixture: at least one finding per text rule, plus
//! two unwrap-budget call sites. Never compiled; the golden test feeds it
//! to the rule engine and pins the exact diagnostics.

use std::collections::{HashMap, HashSet};

fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

fn modified() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn hasher() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}

fn background() {
    std::thread::spawn(|| {});
    std::thread::sleep(std::time::Duration::from_millis(1));
}

fn lookup(m: &HashMap<u32, u32>, s: &HashSet<u32>) -> u32 {
    m.get(&0).copied().unwrap() + s.len() as u32
}

fn brittle(x: Option<u32>) -> u32 {
    x.expect("fixture")
}
