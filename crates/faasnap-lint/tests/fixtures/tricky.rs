//! Fixture for the lexer: every hazard below sits in a string, a comment,
//! an identifier-boundary trap, or a `#[cfg(test)]` region. Nothing here
//! may produce a diagnostic, and the unwrap budget must stay at zero.

const PROSE: &str = "HashMap and Instant::now are only prose here";
const RAW: &str = r#"thread::spawn("inside a raw string, with quotes")"#;
const BYTES: &[u8] = b"SystemTime";

/* nested /* block */ comment mentioning RandomState */
fn lifetimes<'a>(x: &'a str) -> &'a str {
    let _c = 'h'; // a char literal, not a lifetime
    x
}

struct MyHashMapLike;

fn r#type(x: Result<u32, MyHashMapLike>) -> u32 {
    x.unwrap_or(0)
}

fn multiline() -> &'static str {
    "a string that spans
     lines and mentions thread::sleep so line
     numbers past it must still be right"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_inside_cfg_test_are_free() {
        Some(1u32).unwrap();
        Some(2u32).expect("still free");
    }
}
