//! Fixture for the sanctioned deterministic hash containers: DetMap and
//! DetSet iterate in insertion order under seeded hashing, so the
//! `no-unordered-iteration` rule must stay silent on them — no per-site
//! allow directives required. The only mentions of the banned types
//! live in prose, which the lexer masks.

use sim_core::detmap::{DetMap, DetSet};

/// Replaces a HashMap (banned) with a DetMap (sanctioned).
pub fn tally(keys: &[u32]) -> DetMap<u32, u64> {
    let mut counts: DetMap<u32, u64> = DetMap::new();
    for &k in keys {
        *counts.or_insert_with(k, || 0) += 1;
    }
    counts
}

/// Iteration order is insertion order, so collecting is deterministic.
pub fn distinct(keys: &[u32]) -> Vec<u32> {
    let mut seen: DetSet<u32> = DetSet::new();
    for &k in keys {
        seen.insert(k);
    }
    seen.iter().copied().collect()
}

/// Identifier-boundary check: these are not the banned names.
pub struct DetMapHashMapAdapter;
pub struct HashSetLikeDetSet;
