//! Fixture for directive semantics: findings suppressed in both the
//! preceding and the trailing placement, a budget exemption, and two
//! malformed directives that must be reported and suppress nothing.

// faasnap-lint: allow(no-unordered-iteration, fixture demonstrates the preceding placement)
use std::collections::HashMap;

// faasnap-lint: allow(no-unordered-iteration, only the count escapes; order is never observed)
fn count(m: &HashMap<u32, u32>) -> usize {
    m.len()
}

fn sleepy(d: std::time::Duration) {
    std::thread::sleep(d); // faasnap-lint: allow(no-threads, fixture demonstrates the trailing placement)
}

// faasnap-lint: allow(unwrap-budget, fixture demonstrates the budget exemption)
fn exempt(x: Option<u32>) -> u32 { x.unwrap() }

// faasnap-lint: allow(no-wallclock)
fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

// faasnap-lint: allow(no-such-rule, a reason cannot rescue an unknown id)
fn plain() {}
