//! Deep fixture: a wall-clock read laundered through two private
//! helpers into a public, golden-emitting function. The line rules see
//! only `stamp_ns`; the taint pass must flag `emit_summary` with the
//! full chain.

/// Private wrapper around the nondeterminism source.
fn stamp_ns() -> u64 {
    let t = std::time::SystemTime::now();
    let _ = t;
    0
}

/// Innocent-looking formatter that happens to call the wrapper.
fn header_line() -> String {
    format!("# generated at {}", stamp_ns())
}

/// Public entry point whose output lands in a golden file.
pub fn emit_summary() -> String {
    let mut out = header_line();
    out.push_str("\ntotal 0\n");
    out
}
