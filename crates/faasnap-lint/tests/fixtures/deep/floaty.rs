//! Deep fixture: float-determinism hazards. A float-keyed map and a
//! `partial_cmp` on a publicly reachable path are flagged; the same
//! comparison inside an unreachable helper is not.

use std::collections::BTreeMap;

pub struct Scores {
    pub by_score: BTreeMap<f64, u32>,
}

pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

fn island_compare(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some()
}
