//! Deep fixture: allow liveness. The first directive suppresses a real
//! finding and stays silent; the second suppresses nothing and is
//! reported as `dead-allow`.

pub fn counted() -> usize {
    // faasnap-lint: allow(no-unordered-iteration, only the count escapes; iteration order never observed)
    std::collections::HashSet::<u32>::new().len()
}

// faasnap-lint: allow(no-wallclock, a clock lived here before the refactor)
pub fn quiet() -> u32 {
    7
}
