//! Deep fixture: panic-path sites. Three count toward the budget
//! (`panic!`, `.expect(`, slice index); the allowed index and everything
//! under `#[cfg(test)]` do not.

pub fn risky(v: &[u32], x: Option<u32>) -> u32 {
    if v.is_empty() {
        panic!("empty input");
    }
    v[0] + x.expect("caller guarantees Some")
}

pub fn vetted(v: &[u32]) -> u32 {
    // faasnap-lint: allow(panic-path, length checked by risky() before every call)
    v[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn harness_panics_are_free() {
        let v: Vec<u32> = vec![1];
        assert_eq!(v[0], 1);
        unreachable!();
    }
}
