//! Deep fixture: ambient environment reads. The bare read is flagged
//! (`no-env-read`) and taints its public caller; the allowed read seeds
//! nothing.

fn knob() -> bool {
    std::env::var("FIXTURE_KNOB").is_ok()
}

pub fn decide() -> bool {
    knob()
}

pub fn sanctioned_toggle() -> bool {
    // faasnap-lint: allow(no-env-read, toggles an optional side artifact only; primary output is unchanged)
    std::env::var_os("FIXTURE_SIDE_DIR").is_some()
}
