//! Golden test over the fixtures in `tests/fixtures/`.
//!
//! Each `.rs` fixture runs through the rule engine as if it were library
//! code of a crate named `sim-fixture`; the diagnostics plus the per-file
//! unwrap-site count are compared byte-for-byte against
//! `tests/fixtures/expected.golden`. Regenerate after an intentional rule
//! change with `FAASNAP_BLESS=1 cargo test -p faasnap-lint` and review
//! the golden diff by hand.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use faasnap_lint::{lint_source, FileCtx};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixtures_match_golden() {
    let dir = fixtures_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("read fixtures dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .into_string()
                .expect("utf-8 fixture name")
        })
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no fixtures in {}", dir.display());

    let mut actual = String::new();
    for name in &names {
        let source = std::fs::read_to_string(dir.join(name)).expect("read fixture");
        let rel = format!("fixtures/{name}");
        let ctx = FileCtx {
            path: &rel,
            crate_name: "sim-fixture",
            is_harness: false,
        };
        let lint = lint_source(&ctx, &source);
        for d in &lint.diagnostics {
            writeln!(actual, "{d}").expect("write to string");
        }
        writeln!(actual, "{rel}: unwrap_sites={}", lint.unwrap_sites).expect("write to string");
    }

    let golden = dir.join("expected.golden");
    if std::env::var_os("FAASNAP_BLESS").is_some() {
        std::fs::write(&golden, &actual).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden)
        .expect("tests/fixtures/expected.golden missing; run once with FAASNAP_BLESS=1");
    assert_eq!(
        actual, expected,
        "fixture diagnostics drifted; if intentional, rerun with FAASNAP_BLESS=1 and review"
    );
}
