//! Page-presence tracking for one VMM address space.
//!
//! Three states per guest page, reflecting the distinctions the paper
//! measures:
//!
//! - [`PageState::NotPresent`] — first guest access takes the full fault
//!   path (anonymous zero-fill, minor, or major).
//! - [`PageState::HostPte`] — a host PTE exists (e.g. installed by REAP's
//!   `UFFDIO_COPY` prefetch) but the guest has not touched the page yet;
//!   the first guest access is a fast fault: "Page faults on these pages
//!   are processed in less than 4 microseconds since the host page table
//!   entries already exist" (§3.3).
//! - [`PageState::Mapped`] — fully faulted in; further guest accesses are
//!   free (no host-visible fault). Warm VMs start with their previously
//!   touched pages in this state.
//!
//! RSS (resident set size) counts pages in either present state; the
//! FaaSnap daemon polls RSS via procfs to pace `mincore` scans (§5).

use crate::addr::{PageNum, PageRange};

/// Presence state of one guest page in the VMM address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum PageState {
    /// No host mapping; a guest access takes the full fault path.
    NotPresent = 0,
    /// Host PTE installed (UFFDIO_COPY / prefault) but not yet accessed by
    /// the guest; first access is a cheap fault.
    HostPte = 1,
    /// Fully mapped; guest accesses cause no host-visible fault.
    Mapped = 2,
}

/// Dense page-state table for a guest address space.
#[derive(Clone, Debug)]
pub struct PageTable {
    states: Vec<u8>,
    rss_pages: u64,
}

impl PageTable {
    /// Creates a table for `total_pages` guest pages, all not-present.
    pub fn new(total_pages: u64) -> Self {
        PageTable {
            states: vec![PageState::NotPresent as u8; total_pages as usize],
            rss_pages: 0,
        }
    }

    /// Total pages tracked.
    pub fn total_pages(&self) -> u64 {
        self.states.len() as u64
    }

    /// Current state of `page`.
    pub fn state(&self, page: PageNum) -> PageState {
        match self.states[page as usize] {
            0 => PageState::NotPresent,
            1 => PageState::HostPte,
            _ => PageState::Mapped,
        }
    }

    /// True if a guest access to `page` faults (not fully mapped).
    pub fn faults_on(&self, page: PageNum) -> bool {
        self.states[page as usize] != PageState::Mapped as u8
    }

    /// Sets the state of one page, maintaining RSS.
    pub fn set_state(&mut self, page: PageNum, state: PageState) {
        let old = self.states[page as usize];
        let new = state as u8;
        if (old == 0) && new != 0 {
            self.rss_pages += 1;
        } else if old != 0 && new == 0 {
            self.rss_pages -= 1;
        }
        self.states[page as usize] = new;
    }

    /// Marks one page fully mapped.
    pub fn install(&mut self, page: PageNum) {
        self.set_state(page, PageState::Mapped);
    }

    /// Marks every page in `range` with `state` (e.g. UFFDIO_COPY of the
    /// REAP working set, or a warm VM's resident pages).
    pub fn set_range(&mut self, range: PageRange, state: PageState) {
        for p in range.iter() {
            self.set_state(p, state);
        }
    }

    /// Resident set size in pages (present in either state).
    pub fn rss_pages(&self) -> u64 {
        self.rss_pages
    }

    /// Number of pages in the `Mapped` state.
    pub fn mapped_pages(&self) -> u64 {
        self.states
            .iter()
            .filter(|&&s| s == PageState::Mapped as u8)
            .count() as u64
    }

    /// Clears every page back to not-present (fresh restore).
    pub fn clear(&mut self) {
        self.states.fill(PageState::NotPresent as u8);
        self.rss_pages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let pt = PageTable::new(100);
        assert_eq!(pt.total_pages(), 100);
        assert_eq!(pt.rss_pages(), 0);
        assert!(pt.faults_on(0));
        assert_eq!(pt.state(50), PageState::NotPresent);
    }

    #[test]
    fn install_and_rss() {
        let mut pt = PageTable::new(10);
        pt.install(3);
        assert!(!pt.faults_on(3));
        assert_eq!(pt.rss_pages(), 1);
        // Re-install does not double count.
        pt.install(3);
        assert_eq!(pt.rss_pages(), 1);
    }

    #[test]
    fn host_pte_still_faults_but_is_resident() {
        let mut pt = PageTable::new(10);
        pt.set_state(5, PageState::HostPte);
        assert!(pt.faults_on(5));
        assert_eq!(pt.rss_pages(), 1);
        pt.install(5);
        assert!(!pt.faults_on(5));
        assert_eq!(pt.rss_pages(), 1);
    }

    #[test]
    fn range_operations() {
        let mut pt = PageTable::new(100);
        pt.set_range(PageRange::new(10, 20), PageState::HostPte);
        assert_eq!(pt.rss_pages(), 10);
        pt.set_range(PageRange::new(15, 25), PageState::Mapped);
        assert_eq!(pt.rss_pages(), 15);
        assert_eq!(pt.mapped_pages(), 10);
        assert_eq!(pt.state(12), PageState::HostPte);
        assert_eq!(pt.state(17), PageState::Mapped);
    }

    #[test]
    fn clear_resets() {
        let mut pt = PageTable::new(10);
        pt.set_range(PageRange::new(0, 10), PageState::Mapped);
        pt.clear();
        assert_eq!(pt.rss_pages(), 0);
        assert!(pt.faults_on(0));
    }

    #[test]
    fn unmapping_decrements_rss() {
        let mut pt = PageTable::new(10);
        pt.install(1);
        pt.set_state(1, PageState::NotPresent);
        assert_eq!(pt.rss_pages(), 0);
    }
}
