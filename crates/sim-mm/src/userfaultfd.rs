//! `userfaultfd` registration model.
//!
//! REAP (§2.5) registers the guest memory region with `userfaultfd` so
//! that page faults are delivered to a user-space handler instead of being
//! resolved by the kernel. The registry tracks which ranges are registered;
//! the handler's timing behavior (wake latency, serialized service,
//! `UFFDIO_COPY` installs, context-switch resume penalty) lives with the
//! REAP restore strategy in the `faasnap` crate.

use crate::addr::{normalize, PageNum, PageRange};

/// Registered `userfaultfd` ranges for one address space.
#[derive(Clone, Debug, Default)]
pub struct UffdRegistry {
    ranges: Vec<PageRange>,
}

impl UffdRegistry {
    /// Creates an empty registry (no user-level fault handling).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a range for user-level fault delivery.
    pub fn register(&mut self, range: PageRange) {
        if range.is_empty() {
            return;
        }
        let mut all = std::mem::take(&mut self.ranges);
        all.push(range);
        self.ranges = normalize(all);
    }

    /// Removes a range from user-level delivery (UFFDIO_UNREGISTER).
    pub fn unregister(&mut self, range: PageRange) {
        let mut out = Vec::with_capacity(self.ranges.len() + 1);
        for r in &self.ranges {
            if !r.overlaps(&range) {
                out.push(*r);
                continue;
            }
            if r.start < range.start {
                out.push(PageRange::new(r.start, range.start));
            }
            if range.end < r.end {
                out.push(PageRange::new(range.end, r.end));
            }
        }
        self.ranges = out;
    }

    /// True if faults on `page` are delivered to user space.
    pub fn covers(&self, page: PageNum) -> bool {
        // Binary search over sorted disjoint ranges.
        self.ranges
            .binary_search_by(|r| {
                if r.end <= page {
                    std::cmp::Ordering::Less
                } else if r.start > page {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Registered ranges, sorted and disjoint.
    pub fn ranges(&self) -> &[PageRange] {
        &self.ranges
    }

    /// Clears all registrations.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_cover() {
        let mut u = UffdRegistry::new();
        assert!(!u.covers(5));
        u.register(PageRange::new(0, 10));
        assert!(u.covers(0));
        assert!(u.covers(9));
        assert!(!u.covers(10));
    }

    #[test]
    fn overlapping_registrations_normalize() {
        let mut u = UffdRegistry::new();
        u.register(PageRange::new(0, 10));
        u.register(PageRange::new(5, 20));
        u.register(PageRange::new(20, 25));
        assert_eq!(u.ranges(), &[PageRange::new(0, 25)]);
    }

    #[test]
    fn unregister_splits() {
        let mut u = UffdRegistry::new();
        u.register(PageRange::new(0, 100));
        u.unregister(PageRange::new(40, 60));
        assert!(u.covers(39));
        assert!(!u.covers(40));
        assert!(!u.covers(59));
        assert!(u.covers(60));
        assert_eq!(u.ranges().len(), 2);
    }

    #[test]
    fn unregister_everything() {
        let mut u = UffdRegistry::new();
        u.register(PageRange::new(10, 20));
        u.unregister(PageRange::new(0, 100));
        assert!(u.is_empty());
    }

    #[test]
    fn covers_with_many_ranges() {
        let mut u = UffdRegistry::new();
        for i in 0..50 {
            u.register(PageRange::new(i * 10, i * 10 + 5));
        }
        assert!(u.covers(123));
        assert!(!u.covers(127));
        assert!(u.covers(494));
        assert!(!u.covers(495));
    }

    #[test]
    fn empty_register_is_noop() {
        let mut u = UffdRegistry::new();
        u.register(PageRange::EMPTY);
        assert!(u.is_empty());
    }
}
