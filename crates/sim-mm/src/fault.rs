//! Guest page fault classification and resolution planning.
//!
//! [`FaultResolver::resolve`] is the model of `kvm_mmu_page_fault` plus the
//! host fault path. Given a faulting guest page it returns a
//! [`FaultOutcome`] describing *what must happen* — an immediate cost for
//! anonymous/minor/host-PTE faults, a disk I/O plus overhead for majors, or
//! delivery to user space for `userfaultfd`-registered ranges. The DES
//! runtime executes the plan (schedules the disk completion, inserts the
//! readahead window into the page cache, resumes the vCPU).
//!
//! The classification order mirrors the kernel:
//!
//! 1. page fully mapped → no fault;
//! 2. host PTE present (REAP-prefetched) → cheap fault;
//! 3. `userfaultfd`-registered → user-space delivery;
//! 4. anonymous VMA → zero-fill fault;
//! 5. file-backed, cached → minor fault;
//! 6. file-backed, uncached → major fault with readahead.

use faasnap_obs::{SelfProfile, TraceContext, Tracer};
use sim_core::detmap::DetMap;
use sim_core::rng::Prng;
use sim_core::time::{SimDuration, SimTime};
use sim_storage::device::{IoKind, IoRequest};
use sim_storage::file::FileId;
use sim_storage::readahead::ReadaheadState;

use crate::addr::PageNum;
use crate::costs::FaultCosts;
use crate::page_table::{PageState, PageTable};
use crate::share::SharedPages;
use crate::userfaultfd::UffdRegistry;
use crate::vma::{AddressSpace, Resolved};

/// The class of a handled fault, for accounting (Figure 2, Figure 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Anonymous zero-fill.
    Anon,
    /// Served from the page cache.
    Minor,
    /// Required a disk read.
    Major,
    /// Host PTE already present (prefetched via `UFFDIO_COPY`).
    HostPte,
    /// Delivered to a user-space `userfaultfd` handler.
    Uffd,
}

impl FaultKind {
    /// Trace span name for a fault of this class.
    pub fn span_name(self) -> &'static str {
        match self {
            FaultKind::Anon => "fault/anon",
            FaultKind::Minor => "fault/minor",
            FaultKind::Major => "fault/major",
            FaultKind::HostPte => "fault/host_pte",
            FaultKind::Uffd => "fault/uffd",
        }
    }

    /// Metric label value (`class="..."`) for a fault of this class.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Anon => "anon",
            FaultKind::Minor => "minor",
            FaultKind::Major => "major",
            FaultKind::HostPte => "host_pte",
            FaultKind::Uffd => "uffd",
        }
    }
}

/// The plan for resolving one fault.
#[derive(Clone, Debug)]
pub enum FaultOutcome {
    /// The page is already fully mapped; no host-visible fault occurs.
    NoFault,
    /// Fault resolves after `cost` with no I/O. The page is installed.
    Resolved {
        /// Handling time.
        cost: SimDuration,
        /// Fault class (`Anon`, `Minor`, or `HostPte`).
        kind: FaultKind,
    },
    /// Major fault: the runtime must submit `io`, wait for completion,
    /// add `overhead`, insert the read window into the page cache, and
    /// install the faulting page. For sequential streams the kernel also
    /// issues `async_io` — the *next* window, read without blocking the
    /// faulting task (Linux async readahead), which is what makes
    /// streaming reads bandwidth-bound instead of latency-bound.
    NeedsIo {
        /// Disk read covering the faulting page and its readahead window.
        io: IoRequest,
        /// Kernel-side handling overhead on top of the disk wait.
        overhead: SimDuration,
        /// Optional non-blocking read of the following window.
        async_io: Option<IoRequest>,
    },
    /// The page is already being read (loader prefetch, another VM, or an
    /// earlier readahead window): sleep on the page lock until `ready_at`,
    /// then pay `cost` to install. Counted as a major fault whose disk
    /// wait overlaps someone else's read.
    WaitInflight {
        /// Completion instant of the in-flight read.
        ready_at: sim_core::time::SimTime,
        /// Install cost after the read completes.
        cost: SimDuration,
    },
    /// The fault must be delivered to the user-space handler registered
    /// for this range (REAP). The runtime routes it to the handler model.
    Userfault {
        /// Backing file of the faulting page (the snapshot memory file).
        file: FileId,
        /// Page within the backing file.
        file_page: u64,
    },
}

/// Seeded fault-resolution delay injection (sim-mm's half of the fault
/// plan): each resolved fault's handling cost is inflated by `extra`
/// with probability `prob`, up to `budget` injections. The injector owns
/// its own rng stream so arming it never perturbs cost sampling.
#[derive(Clone, Debug)]
struct DelayInjection {
    prob: f64,
    extra: SimDuration,
    budget: u64,
    injected: u64,
    rng: Prng,
}

/// Per-address-space fault resolver: owns readahead state per backing
/// file and the RNG used for cost sampling.
#[derive(Clone, Debug)]
pub struct FaultResolver {
    costs: FaultCosts,
    readahead: DetMap<FileId, ReadaheadState>,
    rng: Prng,
    /// Maximum readahead window in pages (Linux default 32 = 128 KiB).
    max_ra_pages: u64,
    initial_ra_pages: u64,
    /// Trace handle; disabled by default so `resolve` stays cost-free.
    tracer: Tracer,
    /// Self-profiling handle (resolution/map-op counters); disabled by
    /// default.
    selfprof: SelfProfile,
    /// Optional injected resolution delays; absent on healthy resolvers.
    delay: Option<DelayInjection>,
}

impl FaultResolver {
    /// Creates a resolver with the given cost model and RNG seed.
    pub fn new(costs: FaultCosts, seed: u64) -> Self {
        FaultResolver {
            costs,
            readahead: DetMap::new(),
            rng: Prng::new(seed),
            max_ra_pages: 32,
            initial_ra_pages: 4,
            tracer: Tracer::disabled(),
            selfprof: SelfProfile::disabled(),
            delay: None,
        }
    }

    /// Arms fault-resolution delay injection: each handled fault's cost
    /// (or major-fault overhead) is inflated by `extra` with probability
    /// `prob`, at most `budget` times. Deterministic for a given seed.
    pub fn set_delay_injection(&mut self, seed: u64, prob: f64, extra: SimDuration, budget: u64) {
        self.delay = Some(DelayInjection {
            prob,
            extra,
            budget,
            injected: 0,
            rng: Prng::new(seed ^ 0xDE1A_FA17_0000_5EED),
        });
    }

    /// Disarms delay injection.
    pub fn clear_delay_injection(&mut self) {
        self.delay = None;
    }

    /// Number of delays injected so far.
    pub fn injected_delays(&self) -> u64 {
        self.delay.as_ref().map_or(0, |d| d.injected)
    }

    /// Inflates a resolution cost if the injector fires. With no injector
    /// armed this is the identity and draws nothing.
    fn inject_delay(&mut self, cost: SimDuration) -> SimDuration {
        if let Some(inj) = self.delay.as_mut() {
            if inj.injected < inj.budget && inj.rng.chance(inj.prob) {
                inj.injected += 1;
                return cost + inj.extra;
            }
        }
        cost
    }

    /// Attaches a tracer so [`FaultResolver::resolve_traced`] emits
    /// `fault/*` spans.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a self-profiling handle so `resolve` counts resolutions
    /// and page-table/cache map operations under `mm/*`.
    pub fn set_self_profile(&mut self, selfprof: SelfProfile) {
        self.selfprof = selfprof;
    }

    /// Overrides readahead window sizes (for sensitivity experiments).
    pub fn with_readahead(mut self, initial: u64, max: u64) -> Self {
        self.initial_ra_pages = initial;
        self.max_ra_pages = max;
        self.readahead.clear();
        self
    }

    /// The cost model in use.
    pub fn costs(&self) -> &FaultCosts {
        &self.costs
    }

    /// Plans the resolution of a guest access to `page`.
    ///
    /// For `Resolved` outcomes the page table is updated here; for
    /// `NeedsIo` and `Userfault` the runtime installs the page when the
    /// plan completes.
    pub fn resolve(
        &mut self,
        page: PageNum,
        aspace: &AddressSpace,
        pt: &mut PageTable,
        pages: &mut SharedPages,
        uffd: &UffdRegistry,
    ) -> FaultOutcome {
        let outcome = self.plan(page, aspace, pt, pages, uffd);
        if self.selfprof.is_enabled() {
            self.selfprof.inc("mm/resolve_calls");
            // Map-op estimates per outcome: a state lookup, plus the
            // install and (for majors) the window scan over cached pages.
            let (name, map_ops) = match &outcome {
                FaultOutcome::NoFault => ("mm/no_fault", 1),
                FaultOutcome::Resolved { .. } => ("mm/resolved", 2),
                FaultOutcome::NeedsIo { io, .. } => {
                    self.selfprof.add("mm/readahead_pages", io.pages);
                    ("mm/io_planned", 2 + io.pages)
                }
                FaultOutcome::WaitInflight { .. } => ("mm/wait_inflight", 2),
                FaultOutcome::Userfault { .. } => ("mm/userfault", 1),
            };
            self.selfprof.inc(name);
            self.selfprof.add("mm/map_ops", map_ops);
        }
        outcome
    }

    fn plan(
        &mut self,
        page: PageNum,
        aspace: &AddressSpace,
        pt: &mut PageTable,
        pages: &mut SharedPages,
        uffd: &UffdRegistry,
    ) -> FaultOutcome {
        if !pt.faults_on(page) {
            return FaultOutcome::NoFault;
        }

        // Prefetched pages fault cheaply even under uffd registration: the
        // host PTE exists, so no user-space event fires.
        if pt.state(page) == PageState::HostPte {
            pt.install(page);
            let cost = self.costs.host_pte_fault(&mut self.rng);
            return FaultOutcome::Resolved {
                cost: self.inject_delay(cost),
                kind: FaultKind::HostPte,
            };
        }

        let resolved = aspace
            .resolve(page)
            .unwrap_or_else(|| panic!("guest fault on unmapped page {page}"));

        if uffd.covers(page) {
            let (file, file_page) = match resolved {
                Resolved::File { file, file_page } => (file, file_page),
                // uffd over an anonymous range: the handler still serves
                // the fault; it has no backing file page. REAP always
                // registers over a file mapping, so treat this as a bug.
                Resolved::Anonymous => {
                    panic!("userfaultfd over anonymous mapping is not modeled")
                }
            };
            return FaultOutcome::Userfault { file, file_page };
        }

        match resolved {
            Resolved::Anonymous => {
                pt.install(page);
                let cost = self.costs.anon_fault(&mut self.rng);
                FaultOutcome::Resolved {
                    cost: self.inject_delay(cost),
                    kind: FaultKind::Anon,
                }
            }
            Resolved::File { file, file_page } => {
                if pages.touch(file, file_page) {
                    pt.install(page);
                    let cost = self.costs.minor_fault(&mut self.rng);
                    FaultOutcome::Resolved {
                        cost: self.inject_delay(cost),
                        kind: FaultKind::Minor,
                    }
                } else if let Some(ready_at) = pages.completion_of(file, file_page) {
                    // Sleep on the page lock; the read in flight will
                    // populate the cache. Install cost on wake.
                    let cost = self.costs.minor_fault(&mut self.rng);
                    FaultOutcome::WaitInflight {
                        ready_at,
                        cost: self.inject_delay(cost),
                    }
                } else {
                    let (io, async_io) = self.plan_major(page, file, file_page, aspace, pages);
                    let overhead = self.costs.major_overhead(&mut self.rng);
                    FaultOutcome::NeedsIo {
                        io,
                        overhead: self.inject_delay(overhead),
                        async_io,
                    }
                }
            }
        }
    }

    /// [`FaultResolver::resolve`] plus span emission: opens a `fault/*`
    /// span at `now` under `parent` describing the planned resolution.
    /// The returned context is carried on the completion event and ended
    /// by the runtime when the fault is installed; it is
    /// [`TraceContext::NONE`] for `NoFault` or when tracing is disabled,
    /// so untraced callers pay nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn resolve_traced(
        &mut self,
        page: PageNum,
        aspace: &AddressSpace,
        pt: &mut PageTable,
        pages: &mut SharedPages,
        uffd: &UffdRegistry,
        now: SimTime,
        parent: TraceContext,
    ) -> (FaultOutcome, TraceContext) {
        let outcome = self.resolve(page, aspace, pt, pages, uffd);
        if !self.tracer.is_enabled() {
            return (outcome, TraceContext::NONE);
        }
        let ctx = match &outcome {
            FaultOutcome::NoFault => TraceContext::NONE,
            FaultOutcome::Resolved { kind, .. } => {
                self.tracer.begin(kind.span_name(), "mm", now, parent)
            }
            FaultOutcome::NeedsIo { io, .. } => {
                let ctx = self.tracer.begin("fault/major", "mm", now, parent);
                self.tracer.tag(ctx, "ra_pages", io.pages);
                ctx
            }
            FaultOutcome::WaitInflight { .. } => {
                let ctx = self.tracer.begin("fault/major", "mm", now, parent);
                self.tracer.tag(ctx, "wait", "inflight");
                ctx
            }
            FaultOutcome::Userfault { .. } => self.tracer.begin("fault/uffd", "mm", now, parent),
        };
        if !ctx.is_none() {
            self.tracer.tag(ctx, "page", page);
        }
        (outcome, ctx)
    }

    /// Computes the readahead window for a major fault: starts at the
    /// faulting file page, clamped to the VMA extent and trimmed at the
    /// first already-cached page so the device read stays contiguous.
    /// For sequential streams (grown window) it also plans the *next*
    /// window as a non-blocking async read.
    fn plan_major(
        &mut self,
        page: PageNum,
        file: FileId,
        file_page: u64,
        aspace: &AddressSpace,
        pages_state: &SharedPages,
    ) -> (IoRequest, Option<IoRequest>) {
        let (init, max) = (self.initial_ra_pages, self.max_ra_pages);
        let ra = self
            .readahead
            .or_insert_with(file, || ReadaheadState::new(init, max));
        let (start, len) = ra.on_miss(file_page);
        debug_assert_eq!(start, file_page);
        let sequential_stream = ra.window_pages() > init;

        // Clamp to the contiguous extent of the mapping so the window
        // never crosses into a different VMA (FaaSnap's per-region
        // mappings naturally bound readahead to each region).
        let vma_limit = aspace.contiguous_extent(page, len);
        let mut pages = vma_limit.max(1);

        // Trim at the first cached page to keep the read contiguous.
        for (i, fp) in (file_page..file_page + pages).enumerate() {
            if i > 0 && pages_state.contains(file, fp) {
                pages = i as u64;
                break;
            }
        }

        let io = IoRequest {
            file,
            page: file_page,
            pages,
            kind: IoKind::FaultRead,
        };

        // Async readahead: only when the stream looks sequential and the
        // sync window was not clipped (a clip means we ran into cached
        // pages or a mapping boundary — no stream to pipeline).
        let mut async_io = None;
        if sequential_stream && pages == len {
            let a_start = file_page + pages;
            let room = aspace.contiguous_extent(page + pages, len).min(len);
            let mut a_pages = 0;
            for fp in a_start..a_start + room {
                if pages_state.contains(file, fp) || pages_state.completion_of(file, fp).is_some() {
                    break;
                }
                a_pages += 1;
            }
            if a_pages > 0 {
                async_io = Some(IoRequest {
                    file,
                    page: a_start,
                    pages: a_pages,
                    kind: IoKind::FaultRead,
                });
            }
        }
        (io, async_io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PageRange;
    use crate::vma::Backing;

    fn setup(
        total: u64,
    ) -> (
        AddressSpace,
        PageTable,
        SharedPages,
        UffdRegistry,
        FaultResolver,
    ) {
        let aspace = AddressSpace::new();
        let pt = PageTable::new(total);
        let pages = SharedPages::new(1 << 20);
        let uffd = UffdRegistry::new();
        let r = FaultResolver::new(FaultCosts::default(), 42);
        (aspace, pt, pages, uffd, r)
    }

    #[test]
    fn mapped_page_no_fault() {
        let (mut a, mut pt, mut c, u, mut r) = setup(100);
        a.map_fixed(PageRange::new(0, 100), Backing::Anonymous);
        pt.install(5);
        assert!(matches!(
            r.resolve(5, &a, &mut pt, &mut c, &u),
            FaultOutcome::NoFault
        ));
    }

    #[test]
    fn anon_fault_resolves_and_installs() {
        let (mut a, mut pt, mut c, u, mut r) = setup(100);
        a.map_fixed(PageRange::new(0, 100), Backing::Anonymous);
        match r.resolve(7, &a, &mut pt, &mut c, &u) {
            FaultOutcome::Resolved {
                kind: FaultKind::Anon,
                cost,
            } => {
                assert!(cost.as_micros_f64() < 15.0);
            }
            other => panic!("expected anon fault, got {other:?}"),
        }
        assert!(!pt.faults_on(7));
    }

    #[test]
    fn minor_fault_from_cache() {
        let (mut a, mut pt, mut c, u, mut r) = setup(100);
        a.map_fixed(
            PageRange::new(0, 100),
            Backing::File {
                file: FileId(1),
                offset_page: 0,
            },
        );
        c.insert(FileId(1), 10);
        match r.resolve(10, &a, &mut pt, &mut c, &u) {
            FaultOutcome::Resolved {
                kind: FaultKind::Minor,
                ..
            } => {}
            other => panic!("expected minor fault, got {other:?}"),
        }
        assert!(!pt.faults_on(10));
    }

    #[test]
    fn major_fault_plans_readahead_io() {
        let (mut a, mut pt, mut c, u, mut r) = setup(100);
        a.map_fixed(
            PageRange::new(0, 100),
            Backing::File {
                file: FileId(1),
                offset_page: 0,
            },
        );
        match r.resolve(10, &a, &mut pt, &mut c, &u) {
            FaultOutcome::NeedsIo { io, overhead, .. } => {
                assert_eq!(io.file, FileId(1));
                assert_eq!(io.page, 10);
                assert_eq!(io.pages, 4, "initial readahead window");
                assert_eq!(io.kind, IoKind::FaultRead);
                assert!(overhead.as_micros_f64() > 1.0);
            }
            other => panic!("expected major fault, got {other:?}"),
        }
        // Page not installed until the runtime completes the IO.
        assert!(pt.faults_on(10));
    }

    #[test]
    fn major_window_clamped_to_vma() {
        let (mut a, mut pt, mut c, u, mut r) = setup(100);
        a.map_fixed(
            PageRange::new(0, 12),
            Backing::File {
                file: FileId(1),
                offset_page: 0,
            },
        );
        match r.resolve(10, &a, &mut pt, &mut c, &u) {
            FaultOutcome::NeedsIo { io, .. } => assert_eq!(io.pages, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn major_window_trimmed_at_cached_page() {
        let (mut a, mut pt, mut c, u, mut r) = setup(100);
        a.map_fixed(
            PageRange::new(0, 100),
            Backing::File {
                file: FileId(1),
                offset_page: 0,
            },
        );
        c.insert(FileId(1), 13);
        match r.resolve(10, &a, &mut pt, &mut c, &u) {
            FaultOutcome::NeedsIo { io, .. } => {
                assert_eq!(io.pages, 3, "trim before cached page 13")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn file_offset_translation_in_major() {
        let (mut a, mut pt, mut c, u, mut r) = setup(100);
        a.map_fixed(
            PageRange::new(50, 60),
            Backing::File {
                file: FileId(2),
                offset_page: 7,
            },
        );
        match r.resolve(55, &a, &mut pt, &mut c, &u) {
            FaultOutcome::NeedsIo { io, .. } => {
                assert_eq!(io.file, FileId(2));
                assert_eq!(io.page, 12);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sequential_majors_grow_window() {
        let (mut a, mut pt, mut c, u, mut r) = setup(1000);
        a.map_fixed(
            PageRange::new(0, 1000),
            Backing::File {
                file: FileId(1),
                offset_page: 0,
            },
        );
        let sizes: Vec<u64> = [0u64, 4, 12]
            .iter()
            .map(|&p| match r.resolve(p, &a, &mut pt, &mut c, &u) {
                FaultOutcome::NeedsIo { io, .. } => io.pages,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(sizes, vec![4, 8, 16]);
    }

    #[test]
    fn uffd_fault_routed_to_user_space() {
        let (mut a, mut pt, mut c, mut u, mut r) = setup(100);
        a.map_fixed(
            PageRange::new(0, 100),
            Backing::File {
                file: FileId(1),
                offset_page: 0,
            },
        );
        u.register(PageRange::new(0, 100));
        match r.resolve(33, &a, &mut pt, &mut c, &u) {
            FaultOutcome::Userfault { file, file_page } => {
                assert_eq!(file, FileId(1));
                assert_eq!(file_page, 33);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn host_pte_fast_path_beats_uffd() {
        let (mut a, mut pt, mut c, mut u, mut r) = setup(100);
        a.map_fixed(
            PageRange::new(0, 100),
            Backing::File {
                file: FileId(1),
                offset_page: 0,
            },
        );
        u.register(PageRange::new(0, 100));
        pt.set_state(20, PageState::HostPte);
        match r.resolve(20, &a, &mut pt, &mut c, &u) {
            FaultOutcome::Resolved {
                kind: FaultKind::HostPte,
                cost,
            } => {
                assert!(cost.as_micros_f64() < 10.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inflight_read_blocks_instead_of_duplicating() {
        let (mut a, mut pt, mut c, u, mut r) = setup(100);
        a.map_fixed(
            PageRange::new(0, 100),
            Backing::File {
                file: FileId(1),
                offset_page: 0,
            },
        );
        let ready = sim_core::time::SimTime::from_nanos(50_000);
        c.insert_window(FileId(1), 8, 8, ready);
        match r.resolve(10, &a, &mut pt, &mut c, &u) {
            FaultOutcome::WaitInflight { ready_at, cost } => {
                assert_eq!(ready_at, ready);
                assert!(cost.as_micros_f64() < 15.0);
            }
            other => panic!("expected WaitInflight, got {other:?}"),
        }
        // A page outside the window still plans its own IO.
        assert!(matches!(
            r.resolve(40, &a, &mut pt, &mut c, &u),
            FaultOutcome::NeedsIo { .. }
        ));
    }

    #[test]
    fn delay_injection_inflates_costs_deterministically() {
        let extra = SimDuration::from_micros(250);
        let run = |armed: bool| {
            let (mut a, mut pt, mut c, u, mut r) = setup(100);
            a.map_fixed(PageRange::new(0, 100), Backing::Anonymous);
            if armed {
                r.set_delay_injection(7, 1.0, extra, 2);
            }
            let costs: Vec<SimDuration> = (0..4)
                .map(|p| match r.resolve(p, &a, &mut pt, &mut c, &u) {
                    FaultOutcome::Resolved { cost, .. } => cost,
                    other => panic!("{other:?}"),
                })
                .collect();
            (costs, r.injected_delays())
        };
        let (clean, n0) = run(false);
        let (injected, n1) = run(true);
        assert_eq!(n0, 0);
        assert_eq!(n1, 2, "budget caps injections");
        // Cost sampling uses its own stream, so armed and clean runs draw
        // identical base costs; the first two differ by exactly `extra`.
        assert_eq!(injected[0], clean[0] + extra);
        assert_eq!(injected[1], clean[1] + extra);
        assert_eq!(injected[2], clean[2]);
        assert_eq!(injected[3], clean[3]);
        // Same seed twice is identical.
        assert_eq!(run(true), run(true));
    }

    #[test]
    fn delay_injection_zero_prob_never_fires() {
        let (mut a, mut pt, mut c, u, mut r) = setup(100);
        a.map_fixed(PageRange::new(0, 100), Backing::Anonymous);
        r.set_delay_injection(7, 0.0, SimDuration::from_micros(250), u64::MAX);
        for p in 0..50 {
            r.resolve(p, &a, &mut pt, &mut c, &u);
        }
        assert_eq!(r.injected_delays(), 0);
        r.clear_delay_injection();
        assert_eq!(r.injected_delays(), 0);
    }

    #[test]
    fn self_profile_counts_resolutions() {
        let (mut a, mut pt, mut c, u, mut r) = setup(100);
        a.map_fixed(
            PageRange::new(0, 100),
            Backing::File {
                file: FileId(1),
                offset_page: 0,
            },
        );
        let prof = SelfProfile::enabled();
        r.set_self_profile(prof.clone());
        // Major (plans a 4-page window), then the same page again → NoFault
        // after install, then a cached page → minor.
        match r.resolve(10, &a, &mut pt, &mut c, &u) {
            FaultOutcome::NeedsIo { .. } => pt.install(10),
            other => panic!("{other:?}"),
        }
        r.resolve(10, &a, &mut pt, &mut c, &u);
        c.insert(FileId(1), 50);
        r.resolve(50, &a, &mut pt, &mut c, &u);
        assert_eq!(prof.counter("mm/resolve_calls"), 3);
        assert_eq!(prof.counter("mm/io_planned"), 1);
        assert_eq!(prof.counter("mm/readahead_pages"), 4);
        assert_eq!(prof.counter("mm/no_fault"), 1);
        assert_eq!(prof.counter("mm/resolved"), 1);
        assert_eq!(prof.counter("mm/map_ops"), 1 + 2 + (2 + 4));
    }

    #[test]
    #[should_panic(expected = "unmapped page")]
    fn unmapped_fault_panics() {
        let (a, mut pt, mut c, u, mut r) = setup(100);
        r.resolve(5, &a, &mut pt, &mut c, &u);
    }
}
