//! In-flight I/O tracking (the kernel's page-lock semantics).
//!
//! When a fault hits a file page that is already being read from disk —
//! because the FaaSnap loader prefetched it, another VM faulted on it, or
//! an earlier readahead window covered it — the kernel does not issue a
//! second read: the faulting task sleeps on the page lock until the
//! in-flight read completes. Without this, concurrent paging would look
//! useless (every racing fault would double the disk traffic).
//!
//! The registry maps pending `(file, page)` reads to their completion
//! instants. The DES runtime inserts a window when it submits the read and
//! clears it on completion.

use sim_core::detmap::DetMap;
use sim_core::time::SimTime;
use sim_storage::file::FileId;

/// Registry of file pages with reads currently in flight.
#[derive(Clone, Debug, Default)]
pub struct InflightIo {
    pending: DetMap<(FileId, u64), SimTime>,
}

impl InflightIo {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `len` pages of `file` starting at `start` as in flight,
    /// completing at `done`. Overlapping registrations keep the earliest
    /// completion (the first read to finish unlocks the page).
    pub fn insert_window(&mut self, file: FileId, start: u64, len: u64, done: SimTime) {
        for p in start..start + len {
            match self.pending.get_mut(&(file, p)) {
                Some(t) => *t = (*t).min(done),
                None => {
                    self.pending.insert((file, p), done);
                }
            }
        }
    }

    /// The completion instant of an in-flight read covering `page`, if any.
    pub fn completion_of(&self, file: FileId, page: u64) -> Option<SimTime> {
        self.pending.get(&(file, page)).copied()
    }

    /// Clears a completed window. Entries that were superseded by an
    /// earlier overlapping completion are left untouched only if their
    /// recorded time is earlier than `done` (they belong to the other
    /// read); equal-or-later entries are removed.
    pub fn complete_window(&mut self, file: FileId, start: u64, len: u64, done: SimTime) {
        for p in start..start + len {
            if let Some(&t) = self.pending.get(&(file, p)) {
                if t <= done {
                    self.pending.remove(&(file, p));
                }
            }
        }
    }

    /// Cancels a window whose read failed.
    ///
    /// Only entries recorded for *this* read are removed — exactly those
    /// whose completion equals `done`, since [`InflightIo::insert_window`]
    /// keeps the earliest completion per page: a page owned by an earlier
    /// overlapping read keeps its (sooner) instant and its data is
    /// unaffected by this failure. Waiters sleeping on a cancelled page
    /// wake to find it absent and re-fault, issuing a fresh read.
    pub fn cancel_window(&mut self, file: FileId, start: u64, len: u64, done: SimTime) {
        for p in start..start + len {
            if self.pending.get(&(file, p)) == Some(&done) {
                self.pending.remove(&(file, p));
            }
        }
    }

    /// Clears all pending entries (between simulation runs, whose clocks
    /// restart at zero).
    pub fn clear(&mut self) {
        self.pending.clear();
    }

    /// Number of pages currently in flight.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn insert_and_query() {
        let mut io = InflightIo::new();
        io.insert_window(FileId(1), 10, 4, t(100));
        assert_eq!(io.completion_of(FileId(1), 10), Some(t(100)));
        assert_eq!(io.completion_of(FileId(1), 13), Some(t(100)));
        assert_eq!(io.completion_of(FileId(1), 14), None);
        assert_eq!(io.completion_of(FileId(2), 10), None);
        assert_eq!(io.len(), 4);
    }

    #[test]
    fn overlap_keeps_earliest() {
        let mut io = InflightIo::new();
        io.insert_window(FileId(1), 0, 4, t(200));
        io.insert_window(FileId(1), 2, 4, t(100));
        assert_eq!(io.completion_of(FileId(1), 1), Some(t(200)));
        assert_eq!(io.completion_of(FileId(1), 2), Some(t(100)));
        assert_eq!(io.completion_of(FileId(1), 3), Some(t(100)));
        assert_eq!(io.completion_of(FileId(1), 5), Some(t(100)));
    }

    #[test]
    fn complete_clears_window() {
        let mut io = InflightIo::new();
        io.insert_window(FileId(1), 0, 8, t(100));
        io.complete_window(FileId(1), 0, 8, t(100));
        assert!(io.is_empty());
    }

    #[test]
    fn cancel_removes_only_the_failed_read() {
        let mut io = InflightIo::new();
        io.insert_window(FileId(1), 0, 8, t(300));
        // A faster overlapping read owns pages 2..4.
        io.insert_window(FileId(1), 2, 2, t(100));
        io.cancel_window(FileId(1), 0, 8, t(300));
        // The failed read's pages are gone; the fast read's survive.
        assert_eq!(io.completion_of(FileId(1), 0), None);
        assert_eq!(io.completion_of(FileId(1), 7), None);
        assert_eq!(io.completion_of(FileId(1), 2), Some(t(100)));
        assert_eq!(io.completion_of(FileId(1), 3), Some(t(100)));
        assert_eq!(io.len(), 2);
    }

    #[test]
    fn complete_leaves_earlier_overlaps() {
        let mut io = InflightIo::new();
        io.insert_window(FileId(1), 0, 4, t(300));
        io.insert_window(FileId(1), 2, 2, t(100));
        // The slow read finishing must not clear entries owned by the
        // faster overlapping read... but the faster read's pages complete
        // first in simulated time anyway, so completing it clears them.
        io.complete_window(FileId(1), 2, 2, t(100));
        assert_eq!(io.completion_of(FileId(1), 2), None);
        assert_eq!(io.completion_of(FileId(1), 0), Some(t(300)));
        io.complete_window(FileId(1), 0, 4, t(300));
        assert!(io.is_empty());
    }
}
