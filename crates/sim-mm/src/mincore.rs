//! The `mincore(2)` model used for FaaSnap's host page recording.
//!
//! §4.4: "FaaSnap uses the mincore syscall to construct the working set
//! file. mincore scans the present bits in the page table entries to
//! determine if pages in a memory range are present in memory. In our
//! case, it detects if guest pages are in the host page cache."
//!
//! For a file-backed mapping, a page is *in core* iff the backing file
//! page is resident in the page cache — whether it got there via a guest
//! fault, kernel readahead, or another process reading the same file. This
//! is exactly why host page recording is more tolerant of working-set
//! drift than `userfaultfd` tracking: readahead-predicted pages are
//! recorded too. For an anonymous mapping, a page is in core iff it is
//! resident in the address space.

use crate::addr::{PageNum, PageRange};
use crate::page_table::{PageState, PageTable};
use crate::share::SharedPages;
use crate::vma::{AddressSpace, Resolved};

/// Returns the in-core bitmap for `range` of the mapped guest region,
/// exactly as `mincore` would report it.
pub fn mincore(
    range: PageRange,
    aspace: &AddressSpace,
    pt: &PageTable,
    cache: &SharedPages,
) -> Vec<bool> {
    range
        .iter()
        .map(|p| page_in_core(p, aspace, pt, cache))
        .collect()
}

/// In-core test for a single page.
pub fn page_in_core(
    page: PageNum,
    aspace: &AddressSpace,
    pt: &PageTable,
    cache: &SharedPages,
) -> bool {
    match aspace.resolve(page) {
        Some(Resolved::File { file, file_page }) => cache.contains(file, file_page),
        Some(Resolved::Anonymous) => pt.state(page) != PageState::NotPresent,
        None => false,
    }
}

/// Scans `range` and returns pages that are in core now but absent from
/// `already_seen` (a bitmap indexed from `range.start`), updating
/// `already_seen` in place. This is the incremental scan the FaaSnap
/// daemon performs repeatedly during the record phase (§5): each call
/// returns the *newly present* pages, in address order.
pub fn scan_new_pages(
    range: PageRange,
    aspace: &AddressSpace,
    pt: &PageTable,
    cache: &SharedPages,
    already_seen: &mut [bool],
) -> Vec<PageNum> {
    assert_eq!(
        already_seen.len() as u64,
        range.len(),
        "bitmap sized to range"
    );
    let mut new_pages = Vec::new();
    for (i, p) in range.iter().enumerate() {
        if !already_seen[i] && page_in_core(p, aspace, pt, cache) {
            already_seen[i] = true;
            new_pages.push(p);
        }
    }
    new_pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vma::Backing;
    use sim_storage::file::FileId;

    fn world() -> (AddressSpace, PageTable, SharedPages) {
        let mut a = AddressSpace::new();
        a.map_fixed(
            PageRange::new(0, 50),
            Backing::File {
                file: FileId(1),
                offset_page: 0,
            },
        );
        a.map_fixed(PageRange::new(50, 100), Backing::Anonymous);
        (a, PageTable::new(100), SharedPages::new(1000))
    }

    #[test]
    fn file_pages_follow_page_cache() {
        let (a, pt, mut c) = world();
        assert!(!page_in_core(10, &a, &pt, &c));
        c.insert(FileId(1), 10);
        assert!(page_in_core(10, &a, &pt, &c));
    }

    #[test]
    fn readahead_pages_visible_without_guest_access() {
        // The key host-page-recording property: pages cached by readahead
        // are in core even though the guest never faulted on them.
        let (a, pt, mut c) = world();
        c.insert_range(FileId(1), 20, 8);
        let bits = mincore(PageRange::new(18, 30), &a, &pt, &c);
        assert_eq!(
            bits,
            vec![false, false, true, true, true, true, true, true, true, true, false, false]
        );
        assert_eq!(pt.rss_pages(), 0, "guest never touched anything");
    }

    #[test]
    fn anon_pages_follow_residency() {
        let (a, mut pt, c) = world();
        assert!(!page_in_core(60, &a, &pt, &c));
        pt.install(60);
        assert!(page_in_core(60, &a, &pt, &c));
        pt.set_state(61, PageState::HostPte);
        assert!(page_in_core(61, &a, &pt, &c), "host-PTE pages are resident");
    }

    #[test]
    fn unmapped_pages_not_in_core() {
        let (a, pt, c) = world();
        assert!(!page_in_core(500, &a, &pt, &c));
    }

    #[test]
    fn incremental_scan_returns_only_new_pages() {
        let (a, pt, mut c) = world();
        let range = PageRange::new(0, 50);
        let mut seen = vec![false; 50];
        c.insert_range(FileId(1), 5, 3);
        let first = scan_new_pages(range, &a, &pt, &c, &mut seen);
        assert_eq!(first, vec![5, 6, 7]);
        // Nothing new on re-scan.
        assert!(scan_new_pages(range, &a, &pt, &c, &mut seen).is_empty());
        c.insert(FileId(1), 30);
        assert_eq!(scan_new_pages(range, &a, &pt, &c, &mut seen), vec![30]);
    }

    #[test]
    #[should_panic(expected = "bitmap sized to range")]
    fn mis_sized_bitmap_panics() {
        let (a, pt, c) = world();
        let mut seen = vec![false; 3];
        scan_new_pages(PageRange::new(0, 50), &a, &pt, &c, &mut seen);
    }
}
