//! Guest-physical page numbers and ranges.
//!
//! The VMM maps the guest's physical address space at a fixed host virtual
//! base, so guest-physical page numbers double as offsets into both the
//! VMM mapping and the snapshot memory file. All region bookkeeping in the
//! reproduction (working sets, loading sets, zero/non-zero scans, VMAs) is
//! expressed in [`PageRange`]s.

use std::fmt;

/// A guest-physical page number (4 KiB granularity).
pub type PageNum = u64;

/// A half-open range of pages `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageRange {
    /// First page in the range.
    pub start: PageNum,
    /// One past the last page.
    pub end: PageNum,
}

impl PageRange {
    /// Creates `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: PageNum, end: PageNum) -> Self {
        assert!(start <= end, "invalid page range [{start}, {end})");
        PageRange { start, end }
    }

    /// Creates `[start, start + len)`.
    pub fn with_len(start: PageNum, len: u64) -> Self {
        PageRange {
            start,
            end: start + len,
        }
    }

    /// The empty range at zero.
    pub const EMPTY: PageRange = PageRange { start: 0, end: 0 };

    /// Number of pages.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True if the range covers no pages.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Number of bytes covered.
    pub fn bytes(&self) -> u64 {
        self.len() * sim_core::units::PAGE_SIZE
    }

    /// True if `page` lies within the range.
    pub fn contains(&self, page: PageNum) -> bool {
        (self.start..self.end).contains(&page)
    }

    /// True if the two ranges share at least one page.
    pub fn overlaps(&self, other: &PageRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The overlapping sub-range, or an empty range if disjoint.
    pub fn intersect(&self, other: &PageRange) -> PageRange {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start >= end {
            PageRange::EMPTY
        } else {
            PageRange { start, end }
        }
    }

    /// Clamps this range to fit within `bounds`.
    pub fn clamp_to(&self, bounds: &PageRange) -> PageRange {
        self.intersect(bounds)
    }

    /// Iterates over the pages in the range.
    pub fn iter(&self) -> impl Iterator<Item = PageNum> {
        self.start..self.end
    }

    /// Gap between this range and a later range `other` (pages strictly
    /// between them), or `None` if they touch/overlap or `other` starts
    /// before this ends.
    pub fn gap_to(&self, other: &PageRange) -> Option<u64> {
        if other.start >= self.end {
            Some(other.start - self.end)
        } else {
            None
        }
    }

    /// Merges two ranges into their convex hull (caller ensures the gap is
    /// acceptable, as in loading-set region merging).
    pub fn hull(&self, other: &PageRange) -> PageRange {
        PageRange {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Debug for PageRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl fmt::Display for PageRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Normalizes a list of ranges: sorts by start, drops empties, and merges
/// overlapping or adjacent ranges. Returns disjoint, sorted, non-empty
/// ranges covering the same page set.
pub fn normalize(mut ranges: Vec<PageRange>) -> Vec<PageRange> {
    ranges.retain(|r| !r.is_empty());
    ranges.sort_by_key(|r| r.start);
    let mut out: Vec<PageRange> = Vec::with_capacity(ranges.len());
    for r in ranges {
        match out.last_mut() {
            Some(last) if r.start <= last.end => last.end = last.end.max(r.end),
            _ => out.push(r),
        }
    }
    out
}

/// Converts a sorted iterator of page numbers into maximal runs.
pub fn runs_from_pages<I: IntoIterator<Item = PageNum>>(pages: I) -> Vec<PageRange> {
    let mut out: Vec<PageRange> = Vec::new();
    for p in pages {
        match out.last_mut() {
            Some(last) if p == last.end => last.end += 1,
            Some(last) if p < last.end => {
                debug_assert!(p >= last.start, "pages must be sorted");
            }
            _ => out.push(PageRange::with_len(p, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let r = PageRange::new(10, 20);
        assert_eq!(r.len(), 10);
        assert_eq!(r.bytes(), 40_960);
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert!(!PageRange::EMPTY.contains(0));
        assert!(PageRange::with_len(5, 0).is_empty());
    }

    #[test]
    fn overlap_and_intersection() {
        let a = PageRange::new(0, 10);
        let b = PageRange::new(5, 15);
        let c = PageRange::new(10, 20);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "half-open ranges touching do not overlap");
        assert_eq!(a.intersect(&b), PageRange::new(5, 10));
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn gaps_and_hull() {
        let a = PageRange::new(0, 10);
        let b = PageRange::new(15, 20);
        assert_eq!(a.gap_to(&b), Some(5));
        assert_eq!(a.gap_to(&PageRange::new(10, 12)), Some(0));
        assert_eq!(a.gap_to(&PageRange::new(5, 12)), None);
        assert_eq!(a.hull(&b), PageRange::new(0, 20));
    }

    #[test]
    fn normalize_merges_and_sorts() {
        let out = normalize(vec![
            PageRange::new(10, 12),
            PageRange::new(0, 5),
            PageRange::new(4, 8),
            PageRange::new(12, 14),
            PageRange::EMPTY,
        ]);
        assert_eq!(out, vec![PageRange::new(0, 8), PageRange::new(10, 14)]);
    }

    #[test]
    fn runs_from_sorted_pages() {
        let runs = runs_from_pages([1, 2, 3, 7, 8, 20]);
        assert_eq!(
            runs,
            vec![
                PageRange::new(1, 4),
                PageRange::new(7, 9),
                PageRange::new(20, 21)
            ]
        );
        assert!(runs_from_pages(std::iter::empty()).is_empty());
    }

    #[test]
    fn runs_tolerate_duplicates() {
        let runs = runs_from_pages([1, 1, 2, 2, 3]);
        assert_eq!(runs, vec![PageRange::new(1, 4)]);
    }

    #[test]
    #[should_panic(expected = "invalid page range")]
    fn inverted_range_panics() {
        PageRange::new(5, 1);
    }
}
