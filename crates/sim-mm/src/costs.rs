//! Calibrated fault-cost constants.
//!
//! Every constant is tied to a measurement reported in the paper (§3.3,
//! Figure 2, measured with `bpftrace` on `kvm_mmu_page_fault`):
//!
//! - Warm VMs: "average time is 2.5 microseconds, and more than 90% of the
//!   warm page faults take less than 4 microseconds" — anonymous-memory
//!   faults are the cheapest.
//! - Cached: "more than 90% of the page faults in less than 8
//!   microseconds, and the average time is 3.7 microseconds" — minor
//!   faults through the page-cache layer.
//! - Firecracker: "average page fault time of 13.3 microseconds. Nearly 9%
//!   of the page faults take more than 32 microseconds" — majors pay the
//!   disk read on top of a kernel fixed cost.
//! - REAP: in-working-set faults "< 4 microseconds since the host page
//!   table entries already exist"; out-of-set faults add "an overhead of
//!   several microseconds" of user-level handling, and "the guest cannot
//!   immediately resume after a page fault is handled, causing context
//!   switches".
//!
//! Samplers take a [`Prng`] so distributions have the tails visible in
//! Figure 2 while remaining deterministic per seed.

use sim_core::rng::Prng;
use sim_core::time::SimDuration;

/// Cost model for host-side page fault handling.
#[derive(Clone, Debug)]
pub struct FaultCosts {
    /// Median anonymous zero-fill fault (warm-VM-style fault).
    pub anon_median_us: f64,
    /// Median minor fault served from the page cache.
    pub minor_median_us: f64,
    /// Fixed kernel-side overhead of a major fault, added to the disk wait.
    pub major_overhead_us: f64,
    /// Fault on a page whose host PTE already exists (REAP-prefetched).
    pub host_pte_median_us: f64,
    /// Cost of waking the user-level `userfaultfd` handler.
    pub uffd_wake_us: f64,
    /// `UFFDIO_COPY` install cost per page.
    pub uffd_copy_us: f64,
    /// Extra penalty before the guest resumes after a user-level-handled
    /// fault: "the guest cannot immediately resume after a page fault is
    /// handled, causing context switches" and KVM "blocks to wait for the
    /// guest CPU to be ready" (§3.3, §6.4).
    pub uffd_resume_us: f64,
    /// One `mmap` call during VM setup.
    pub mmap_call_us: f64,
    /// One `mincore` scan per GiB of mapped range.
    pub mincore_per_gib_us: f64,
    /// Log-normal sigma for fast-path samples.
    pub sigma: f64,
}

impl Default for FaultCosts {
    fn default() -> Self {
        FaultCosts {
            anon_median_us: 2.3,
            minor_median_us: 3.4,
            major_overhead_us: 6.0,
            host_pte_median_us: 2.8,
            uffd_wake_us: 8.0,
            uffd_copy_us: 2.5,
            uffd_resume_us: 20.0,
            mmap_call_us: 3.0,
            mincore_per_gib_us: 250.0,
            sigma: 0.33,
        }
    }
}

impl FaultCosts {
    /// Samples an anonymous zero-fill fault.
    pub fn anon_fault(&self, rng: &mut Prng) -> SimDuration {
        SimDuration::from_micros_f64(rng.lognormal(self.anon_median_us, self.sigma))
    }

    /// Samples a minor fault served from the page cache.
    pub fn minor_fault(&self, rng: &mut Prng) -> SimDuration {
        SimDuration::from_micros_f64(rng.lognormal(self.minor_median_us, self.sigma))
    }

    /// Samples the kernel-side overhead of a major fault (excludes the
    /// disk wait, which the device model supplies).
    pub fn major_overhead(&self, rng: &mut Prng) -> SimDuration {
        SimDuration::from_micros_f64(rng.lognormal(self.major_overhead_us, self.sigma))
    }

    /// Samples a fault on a host-PTE-present page.
    pub fn host_pte_fault(&self, rng: &mut Prng) -> SimDuration {
        SimDuration::from_micros_f64(rng.lognormal(self.host_pte_median_us, self.sigma))
    }

    /// Samples the handler-wake cost of a `userfaultfd` fault.
    pub fn uffd_wake(&self, rng: &mut Prng) -> SimDuration {
        SimDuration::from_micros_f64(rng.lognormal(self.uffd_wake_us, self.sigma))
    }

    /// Samples one `UFFDIO_COPY` page install.
    pub fn uffd_copy(&self, rng: &mut Prng) -> SimDuration {
        SimDuration::from_micros_f64(rng.lognormal(self.uffd_copy_us, self.sigma))
    }

    /// Samples the guest-resume context-switch penalty after user-level
    /// fault handling.
    pub fn uffd_resume(&self, rng: &mut Prng) -> SimDuration {
        SimDuration::from_micros_f64(rng.lognormal(self.uffd_resume_us, self.sigma))
    }

    /// Cost of issuing `n` `mmap` calls during VM setup.
    pub fn mmap_calls(&self, n: u64) -> SimDuration {
        SimDuration::from_micros_f64(self.mmap_call_us * n as f64)
    }

    /// Cost of one `mincore` scan over `pages` pages.
    pub fn mincore_scan(&self, pages: u64) -> SimDuration {
        let gib = pages as f64 * 4096.0 / (1u64 << 30) as f64;
        SimDuration::from_micros_f64(self.mincore_per_gib_us * gib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_us(mut sample: impl FnMut(&mut Prng) -> SimDuration) -> f64 {
        let mut rng = Prng::new(99);
        let n = 20_000;
        (0..n)
            .map(|_| sample(&mut rng).as_micros_f64())
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn anon_faults_match_warm_distribution() {
        let c = FaultCosts::default();
        // Paper: warm average 2.5us, >90% below 4us.
        let mean = mean_us(|r| c.anon_fault(r));
        assert!((2.2..2.8).contains(&mean), "anon mean {mean}us");
        let mut rng = Prng::new(1);
        let under4 = (0..10_000)
            .filter(|_| c.anon_fault(&mut rng).as_micros_f64() < 4.0)
            .count();
        assert!(under4 > 9_000, "only {under4}/10000 under 4us");
    }

    #[test]
    fn minor_faults_match_cached_distribution() {
        let c = FaultCosts::default();
        // Paper: cached average 3.7us, >90% below 8us.
        let mean = mean_us(|r| c.minor_fault(r));
        assert!((3.2..4.1).contains(&mean), "minor mean {mean}us");
        let mut rng = Prng::new(2);
        let under8 = (0..10_000)
            .filter(|_| c.minor_fault(&mut rng).as_micros_f64() < 8.0)
            .count();
        assert!(under8 > 9_000, "only {under8}/10000 under 8us");
    }

    #[test]
    fn host_pte_faults_fast() {
        let c = FaultCosts::default();
        // Paper: REAP in-working-set faults under 4us.
        let mut rng = Prng::new(3);
        let under4 = (0..10_000)
            .filter(|_| c.host_pte_fault(&mut rng).as_micros_f64() < 4.0)
            .count();
        assert!(under4 > 8_500, "only {under4}/10000 under 4us");
    }

    #[test]
    fn setup_costs_scale() {
        let c = FaultCosts::default();
        assert_eq!(c.mmap_calls(0), SimDuration::ZERO);
        assert!(c.mmap_calls(1000) > c.mmap_calls(10));
        // 2 GiB mincore scan is sub-millisecond.
        let scan = c.mincore_scan(524_288).as_micros_f64();
        assert!((400.0..600.0).contains(&scan), "2GiB scan {scan}us");
    }

    #[test]
    fn ordering_of_fault_classes() {
        let c = FaultCosts::default();
        let anon = mean_us(|r| c.anon_fault(r));
        let minor = mean_us(|r| c.minor_fault(r));
        assert!(
            anon < minor,
            "anon faults must be cheaper than minor faults"
        );
    }
}
