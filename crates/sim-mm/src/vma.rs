//! Virtual memory areas of the VMM's guest-memory mapping.
//!
//! Firecracker provides guest memory to KVM as one host-virtual region.
//! Vanilla snapshot restore maps the whole region to the memory file;
//! FaaSnap instead builds a *hierarchy of overlapping mappings* (§4.8):
//!
//! 1. an anonymous mapping covering the entire guest space,
//! 2. non-zero regions `MAP_FIXED`-overlaid onto the memory file,
//! 3. loading-set regions `MAP_FIXED`-overlaid onto the loading-set file.
//!
//! [`AddressSpace::map_fixed`] implements the kernel's `MAP_FIXED`
//! semantics: a new mapping atomically replaces any overlapped portions of
//! existing mappings (splitting them as needed), exactly like Linux. The
//! number of `mmap` calls is tracked because mapping-setup overhead is part
//! of the paper's motivation for region merging (§4.6: >1000 regions for
//! hello-world before merging, <100 after).

use std::collections::BTreeMap;

use sim_storage::file::FileId;

use crate::addr::{PageNum, PageRange};

/// What a VMA is backed by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backing {
    /// Host anonymous memory (zero-fill on first touch).
    Anonymous,
    /// A file, starting at `offset_page` within it for the VMA's first page.
    File {
        /// Backing file.
        file: FileId,
        /// File page corresponding to the VMA's first page.
        offset_page: u64,
    },
}

/// One mapped region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Vma {
    /// Pages covered.
    pub range: PageRange,
    /// Backing store.
    pub backing: Backing,
}

impl Vma {
    /// Resolves a page within this VMA to its backing location.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the VMA.
    pub fn resolve(&self, page: PageNum) -> Resolved {
        assert!(
            self.range.contains(page),
            "page {page} outside {:?}",
            self.range
        );
        match self.backing {
            Backing::Anonymous => Resolved::Anonymous,
            Backing::File { file, offset_page } => Resolved::File {
                file,
                file_page: offset_page + (page - self.range.start),
            },
        }
    }

    /// Returns the sub-VMA covering `sub` (used when splitting).
    fn slice(&self, sub: PageRange) -> Vma {
        debug_assert!(self.range.intersect(&sub) == sub);
        let backing = match self.backing {
            Backing::Anonymous => Backing::Anonymous,
            Backing::File { file, offset_page } => Backing::File {
                file,
                offset_page: offset_page + (sub.start - self.range.start),
            },
        };
        Vma {
            range: sub,
            backing,
        }
    }
}

/// The backing location of a single page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolved {
    /// Host anonymous memory.
    Anonymous,
    /// Page `file_page` of `file`.
    File {
        /// Backing file.
        file: FileId,
        /// Page index within the file.
        file_page: u64,
    },
}

/// The VMM's guest-memory address space: disjoint VMAs keyed by start page.
#[derive(Clone, Debug, Default)]
pub struct AddressSpace {
    vmas: BTreeMap<PageNum, Vma>,
    mmap_calls: u64,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps `range` to `backing` with `MAP_FIXED` semantics: any existing
    /// mappings overlapping `range` are truncated/split/replaced.
    pub fn map_fixed(&mut self, range: PageRange, backing: Backing) {
        if range.is_empty() {
            return;
        }
        self.mmap_calls += 1;

        // Collect keys of VMAs that might overlap: those starting before
        // range.end, walking back to the one covering range.start.
        let overlapping: Vec<PageNum> = self
            .vmas
            .range(..range.end)
            .rev()
            .take_while(|(_, v)| v.range.end > range.start)
            .map(|(k, _)| *k)
            .collect();

        for key in overlapping {
            let Some(old) = self.vmas.remove(&key) else {
                continue;
            };
            // Left remainder.
            let left = PageRange::new(
                old.range.start,
                range.start.max(old.range.start).min(old.range.end),
            );
            if !left.is_empty() {
                let slice = old.slice(left);
                self.vmas.insert(slice.range.start, slice);
            }
            // Right remainder.
            let right = PageRange::new(
                range.end.max(old.range.start).min(old.range.end),
                old.range.end,
            );
            if !right.is_empty() {
                let slice = old.slice(right);
                self.vmas.insert(slice.range.start, slice);
            }
        }

        self.vmas.insert(range.start, Vma { range, backing });
    }

    /// Looks up the VMA covering `page`, if any.
    pub fn lookup(&self, page: PageNum) -> Option<&Vma> {
        self.vmas
            .range(..=page)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.range.contains(page))
    }

    /// Resolves a page to its backing location, if mapped.
    pub fn resolve(&self, page: PageNum) -> Option<Resolved> {
        self.lookup(page).map(|v| v.resolve(page))
    }

    /// Number of `mmap` calls issued against this address space.
    pub fn mmap_calls(&self) -> u64 {
        self.mmap_calls
    }

    /// Number of distinct VMAs currently present.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Iterates VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// True if every page of `range` is covered by some VMA.
    pub fn covers(&self, range: PageRange) -> bool {
        let mut next = range.start;
        for vma in self.vmas.range(..range.end).map(|(_, v)| v) {
            if vma.range.end <= next {
                continue;
            }
            if vma.range.start > next {
                return false;
            }
            next = vma.range.end;
            if next >= range.end {
                return true;
            }
        }
        next >= range.end
    }

    /// Largest extent of contiguous pages starting at `page` that share the
    /// same VMA, clamped to `limit` pages. Used to clamp readahead windows
    /// so a read never crosses a mapping boundary.
    pub fn contiguous_extent(&self, page: PageNum, limit: u64) -> u64 {
        match self.lookup(page) {
            Some(vma) => (vma.range.end - page).min(limit),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(id: u64, off: u64) -> Backing {
        Backing::File {
            file: FileId(id),
            offset_page: off,
        }
    }

    #[test]
    fn single_mapping_lookup() {
        let mut a = AddressSpace::new();
        a.map_fixed(PageRange::new(0, 100), Backing::Anonymous);
        assert_eq!(a.resolve(50), Some(Resolved::Anonymous));
        assert_eq!(a.resolve(100), None);
        assert_eq!(a.vma_count(), 1);
        assert_eq!(a.mmap_calls(), 1);
    }

    #[test]
    fn file_offset_resolution() {
        let mut a = AddressSpace::new();
        a.map_fixed(PageRange::new(10, 20), file(3, 100));
        assert_eq!(
            a.resolve(15),
            Some(Resolved::File {
                file: FileId(3),
                file_page: 105
            })
        );
    }

    #[test]
    fn overlay_splits_underlying_mapping() {
        let mut a = AddressSpace::new();
        a.map_fixed(PageRange::new(0, 100), Backing::Anonymous);
        a.map_fixed(PageRange::new(40, 60), file(1, 0));
        assert_eq!(a.vma_count(), 3);
        assert_eq!(a.resolve(39), Some(Resolved::Anonymous));
        assert_eq!(
            a.resolve(40),
            Some(Resolved::File {
                file: FileId(1),
                file_page: 0
            })
        );
        assert_eq!(
            a.resolve(59),
            Some(Resolved::File {
                file: FileId(1),
                file_page: 19
            })
        );
        assert_eq!(a.resolve(60), Some(Resolved::Anonymous));
    }

    #[test]
    fn overlay_preserves_file_offsets_on_split() {
        let mut a = AddressSpace::new();
        a.map_fixed(PageRange::new(0, 100), file(1, 1000));
        a.map_fixed(PageRange::new(40, 60), Backing::Anonymous);
        // Right remainder keeps its file offset aligned.
        assert_eq!(
            a.resolve(60),
            Some(Resolved::File {
                file: FileId(1),
                file_page: 1060
            })
        );
        assert_eq!(
            a.resolve(0),
            Some(Resolved::File {
                file: FileId(1),
                file_page: 1000
            })
        );
    }

    #[test]
    fn hierarchical_overlap_faasnap_style() {
        // Anonymous base, then non-zero regions onto the memory file, then
        // loading-set regions onto the loading-set file (Figure 4).
        let mut a = AddressSpace::new();
        a.map_fixed(PageRange::new(0, 1000), Backing::Anonymous);
        a.map_fixed(PageRange::new(100, 500), file(1, 100)); // memory file, same offset
        a.map_fixed(PageRange::new(200, 300), file(2, 0)); // loading set file, compact
        assert_eq!(a.resolve(50), Some(Resolved::Anonymous));
        assert_eq!(
            a.resolve(150),
            Some(Resolved::File {
                file: FileId(1),
                file_page: 150
            })
        );
        assert_eq!(
            a.resolve(250),
            Some(Resolved::File {
                file: FileId(2),
                file_page: 50
            })
        );
        assert_eq!(
            a.resolve(400),
            Some(Resolved::File {
                file: FileId(1),
                file_page: 400
            })
        );
        assert_eq!(a.resolve(700), Some(Resolved::Anonymous));
        assert!(a.covers(PageRange::new(0, 1000)));
        assert_eq!(a.mmap_calls(), 3);
    }

    #[test]
    fn exact_replacement() {
        let mut a = AddressSpace::new();
        a.map_fixed(PageRange::new(10, 20), Backing::Anonymous);
        a.map_fixed(PageRange::new(10, 20), file(1, 0));
        assert_eq!(a.vma_count(), 1);
        assert_eq!(
            a.resolve(10),
            Some(Resolved::File {
                file: FileId(1),
                file_page: 0
            })
        );
    }

    #[test]
    fn overlay_spanning_multiple_vmas() {
        let mut a = AddressSpace::new();
        a.map_fixed(PageRange::new(0, 10), file(1, 0));
        a.map_fixed(PageRange::new(10, 20), file(2, 0));
        a.map_fixed(PageRange::new(20, 30), file(3, 0));
        a.map_fixed(PageRange::new(5, 25), Backing::Anonymous);
        assert_eq!(
            a.resolve(4),
            Some(Resolved::File {
                file: FileId(1),
                file_page: 4
            })
        );
        assert_eq!(a.resolve(5), Some(Resolved::Anonymous));
        assert_eq!(a.resolve(24), Some(Resolved::Anonymous));
        assert_eq!(
            a.resolve(25),
            Some(Resolved::File {
                file: FileId(3),
                file_page: 5
            })
        );
        assert_eq!(a.vma_count(), 3);
    }

    #[test]
    fn coverage_detects_holes() {
        let mut a = AddressSpace::new();
        a.map_fixed(PageRange::new(0, 10), Backing::Anonymous);
        a.map_fixed(PageRange::new(20, 30), Backing::Anonymous);
        assert!(a.covers(PageRange::new(0, 10)));
        assert!(a.covers(PageRange::new(5, 8)));
        assert!(!a.covers(PageRange::new(0, 30)));
        assert!(!a.covers(PageRange::new(15, 18)));
    }

    #[test]
    fn contiguous_extent_clamps() {
        let mut a = AddressSpace::new();
        a.map_fixed(PageRange::new(0, 100), Backing::Anonymous);
        a.map_fixed(PageRange::new(100, 200), file(1, 0));
        assert_eq!(a.contiguous_extent(90, 32), 10);
        assert_eq!(a.contiguous_extent(90, 5), 5);
        assert_eq!(a.contiguous_extent(250, 32), 0);
    }

    #[test]
    fn empty_map_is_noop() {
        let mut a = AddressSpace::new();
        a.map_fixed(PageRange::EMPTY, Backing::Anonymous);
        assert_eq!(a.vma_count(), 0);
        assert_eq!(a.mmap_calls(), 0);
    }
}
