//! Snapshot-keyed shared page state.
//!
//! Historically the page cache and the in-flight registry were keyed by
//! *logical* `(file, page)` identity: two snapshot files deduplicated onto
//! the same store chunks still paid separate reads, and the registries
//! disagreed with the device layer (which already translates store-backed
//! reads to physical extents). This module canonicalizes both registries
//! onto the content-addressed chunk identity a page physically lives at:
//!
//! - [`ShareMap`] owns the chunk-store extent maps and translates a
//!   logical `(file, page)` to its canonical physical key. Files without
//!   a map — every file unless one is registered — translate to
//!   themselves, so the canonical form is the identity on non-store
//!   paths and behavior there is byte-for-byte unchanged.
//! - [`SharedPages`] bundles the host [`PageCache`] and [`InflightIo`]
//!   behind canonical-keyed operations, so concurrent restores of
//!   snapshots that share chunks — fork siblings most of all — share
//!   cache hits and deduplicate in-flight disk reads instead of paying
//!   full freight per VM.
//!
//! Window operations split at chunk boundaries before translating, since
//! dedup placement makes neighboring logical chunks physically
//! discontiguous. A hole (an unmapped chunk, all zeros) keeps its logical
//! key: it costs no I/O either way, and siblings of the same logical file
//! still share it.

use sim_core::detmap::DetMap;
use sim_core::time::SimTime;
use sim_storage::chunked::ChunkedFile;
use sim_storage::file::FileId;

use crate::inflight::InflightIo;
use crate::page_cache::PageCache;

/// Chunk-store extent maps keyed by logical file: the translation from
/// logical page identity to canonical (physical) chunk identity.
#[derive(Clone, Debug, Default)]
pub struct ShareMap {
    chunked: DetMap<FileId, ChunkedFile>,
}

impl ShareMap {
    /// An empty map (every file translates to itself).
    pub fn new() -> Self {
        Self::default()
    }

    /// True if no file has a chunk-store backing.
    pub fn is_empty(&self) -> bool {
        self.chunked.is_empty()
    }

    /// Backs `file` with a chunk-store extent map.
    pub fn map_file(&mut self, file: FileId, map: ChunkedFile) {
        self.chunked.insert(file, map);
    }

    /// Removes a file's chunk-store backing.
    pub fn unmap_file(&mut self, file: FileId) -> Option<ChunkedFile> {
        self.chunked.remove(&file)
    }

    /// The chunk-store backing of `file`, if any.
    pub fn chunked(&self, file: FileId) -> Option<&ChunkedFile> {
        self.chunked.get(&file)
    }

    /// Canonical key of one logical page: the physical `(file, page)` its
    /// bytes live at. Identity for unmapped files and holes.
    pub fn canon(&self, file: FileId, page: u64) -> (FileId, u64) {
        match self.chunked.get(&file) {
            Some(cf) => {
                let idx = page / cf.chunk_pages();
                match cf.extent(idx) {
                    Some(ext) => (ext.file, ext.page + page % cf.chunk_pages()),
                    None => (file, page),
                }
            }
            None => (file, page),
        }
    }

    /// Calls `f` once per maximal canonical run of the logical window
    /// `[start, start + len)` of `file`, splitting at chunk boundaries.
    pub fn for_each_run(
        &self,
        file: FileId,
        start: u64,
        len: u64,
        mut f: impl FnMut(FileId, u64, u64),
    ) {
        let Some(cf) = self.chunked.get(&file) else {
            if len > 0 {
                f(file, start, len);
            }
            return;
        };
        let end = start + len;
        let mut page = start;
        while page < end {
            let idx = page / cf.chunk_pages();
            let chunk_end = (idx + 1) * cf.chunk_pages();
            let span = end.min(chunk_end) - page;
            match cf.extent(idx) {
                Some(ext) => f(ext.file, ext.page + (page - idx * cf.chunk_pages()), span),
                None => f(file, page, span),
            }
            page += span;
        }
    }
}

/// The host's shared page state — page cache plus in-flight reads — with
/// every operation keyed by canonical chunk identity via a [`ShareMap`].
#[derive(Clone, Debug)]
pub struct SharedPages {
    cache: PageCache,
    inflight: InflightIo,
    share: ShareMap,
}

impl SharedPages {
    /// Creates shared page state with a cache of `capacity_pages`.
    pub fn new(capacity_pages: u64) -> Self {
        SharedPages {
            cache: PageCache::new(capacity_pages),
            inflight: InflightIo::new(),
            share: ShareMap::new(),
        }
    }

    /// The translation map.
    pub fn share(&self) -> &ShareMap {
        &self.share
    }

    /// Mutable access to the translation map (registering store-backed
    /// files).
    pub fn share_mut(&mut self) -> &mut ShareMap {
        &mut self.share
    }

    /// Read-only access to the underlying cache (statistics).
    pub fn cache(&self) -> &PageCache {
        &self.cache
    }

    /// Replaces the underlying cache (capacity experiments). The
    /// translation map is preserved.
    pub fn set_cache(&mut self, cache: PageCache) {
        self.cache = cache;
    }

    // --- page cache, canonical-keyed ---------------------------------

    /// True if the page is cached. Pure query (no recency update).
    pub fn contains(&self, file: FileId, page: u64) -> bool {
        let (f, p) = self.share.canon(file, page);
        self.cache.contains(f, p)
    }

    /// Fault-path lookup: updates recency and hit/miss counters.
    pub fn touch(&mut self, file: FileId, page: u64) -> bool {
        let (f, p) = self.share.canon(file, page);
        self.cache.touch(f, p)
    }

    /// Inserts one page.
    pub fn insert(&mut self, file: FileId, page: u64) {
        let (f, p) = self.share.canon(file, page);
        self.cache.insert(f, p);
    }

    /// Inserts a logical window, split into canonical runs.
    pub fn insert_range(&mut self, file: FileId, start: u64, len: u64) {
        let SharedPages { cache, share, .. } = self;
        share.for_each_run(file, start, len, |f, p, n| cache.insert_range(f, p, n));
    }

    /// Cached pages of the logical file: identity-keyed holes plus the
    /// resident pages of every mapped chunk's physical extent.
    pub fn resident_of(&self, file: FileId) -> u64 {
        match self.share.chunked(file) {
            None => self.cache.resident_of(file),
            Some(cf) => {
                let mut n = self.cache.resident_of(file);
                for (_, ext) in cf.extents() {
                    n += self.cache.resident_in(ext.file, ext.page, cf.chunk_pages());
                }
                n
            }
        }
    }

    /// Drops the entire cache (between-test hygiene).
    pub fn drop_cache(&mut self) {
        self.cache.drop_all();
    }

    // --- in-flight reads, canonical-keyed ----------------------------

    /// Completion instant of an in-flight read covering the page, if any.
    pub fn completion_of(&self, file: FileId, page: u64) -> Option<SimTime> {
        let (f, p) = self.share.canon(file, page);
        self.inflight.completion_of(f, p)
    }

    /// Marks a logical window as in flight, completing at `done`.
    pub fn insert_window(&mut self, file: FileId, start: u64, len: u64, done: SimTime) {
        let SharedPages {
            inflight, share, ..
        } = self;
        share.for_each_run(file, start, len, |f, p, n| {
            inflight.insert_window(f, p, n, done)
        });
    }

    /// Clears a completed window.
    pub fn complete_window(&mut self, file: FileId, start: u64, len: u64, done: SimTime) {
        let SharedPages {
            inflight, share, ..
        } = self;
        share.for_each_run(file, start, len, |f, p, n| {
            inflight.complete_window(f, p, n, done)
        });
    }

    /// Cancels a window whose read failed (waiters re-fault).
    pub fn cancel_window(&mut self, file: FileId, start: u64, len: u64, done: SimTime) {
        let SharedPages {
            inflight, share, ..
        } = self;
        share.for_each_run(file, start, len, |f, p, n| {
            inflight.cancel_window(f, p, n, done)
        });
    }

    /// Clears all in-flight entries (between runs, whose clocks restart).
    pub fn clear_inflight(&mut self) {
        self.inflight.clear();
    }

    /// Number of pages currently in flight.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_storage::chunked::ChunkExtent;

    fn f(id: u64) -> FileId {
        FileId(id)
    }

    /// Logical file 1: 8-page chunks; chunk 0 at store pages 64.., chunk 2
    /// at store pages 8.., chunk 1 a hole. Store file is 5.
    fn mapped() -> ShareMap {
        let mut cf = ChunkedFile::new(8);
        cf.map_chunk(
            0,
            ChunkExtent {
                file: f(5),
                page: 64,
            },
        );
        cf.map_chunk(
            2,
            ChunkExtent {
                file: f(5),
                page: 8,
            },
        );
        let mut s = ShareMap::new();
        s.map_file(f(1), cf);
        s
    }

    #[test]
    fn canon_is_identity_for_unmapped_files() {
        let s = ShareMap::new();
        assert_eq!(s.canon(f(9), 123), (f(9), 123));
    }

    #[test]
    fn canon_translates_mapped_chunks_and_keeps_holes() {
        let s = mapped();
        assert_eq!(s.canon(f(1), 3), (f(5), 67), "chunk 0 offset 3");
        assert_eq!(s.canon(f(1), 17), (f(5), 9), "chunk 2 offset 1");
        assert_eq!(s.canon(f(1), 10), (f(1), 10), "hole stays logical");
    }

    #[test]
    fn for_each_run_splits_at_chunk_boundaries() {
        let s = mapped();
        let mut runs = Vec::new();
        s.for_each_run(f(1), 4, 16, |file, page, len| runs.push((file, page, len)));
        assert_eq!(
            runs,
            vec![(f(5), 68, 4), (f(1), 8, 8), (f(5), 8, 4)],
            "chunk-0 tail, the hole, chunk-2 head"
        );
    }

    #[test]
    fn two_logical_files_share_one_chunk() {
        // The point of canonical keys: distinct snapshot files deduplicated
        // onto the same store chunk hit each other's cache lines.
        let mut s = ShareMap::new();
        for file in [f(1), f(2)] {
            let mut cf = ChunkedFile::new(8);
            cf.map_chunk(
                0,
                ChunkExtent {
                    file: f(5),
                    page: 0,
                },
            );
            s.map_file(file, cf);
        }
        let mut pages = SharedPages::new(1 << 20);
        *pages.share_mut() = s;
        pages.insert_range(f(1), 0, 8);
        assert!(pages.contains(f(2), 3), "sibling file shares the chunk");
        assert_eq!(pages.cache().resident_pages(), 8, "stored once");
        assert_eq!(pages.resident_of(f(1)), 8);
        assert_eq!(pages.resident_of(f(2)), 8);
    }

    #[test]
    fn inflight_dedup_across_mapped_files() {
        let mut s = ShareMap::new();
        for file in [f(1), f(2)] {
            let mut cf = ChunkedFile::new(8);
            cf.map_chunk(
                0,
                ChunkExtent {
                    file: f(5),
                    page: 32,
                },
            );
            s.map_file(file, cf);
        }
        let mut pages = SharedPages::new(1 << 20);
        *pages.share_mut() = s;
        let done = SimTime::from_nanos(500);
        pages.insert_window(f(1), 0, 4, done);
        assert_eq!(
            pages.completion_of(f(2), 2),
            Some(done),
            "sibling file waits on the same physical read"
        );
        pages.complete_window(f(2), 0, 4, done);
        assert_eq!(pages.completion_of(f(1), 2), None);
        assert_eq!(pages.inflight_len(), 0);
    }

    #[test]
    fn windows_spanning_holes_keep_logical_identity_there() {
        let s = mapped();
        let mut pages = SharedPages::new(1 << 20);
        *pages.share_mut() = s;
        pages.insert_range(f(1), 6, 6); // chunk-0 tail + hole head
        assert!(pages.contains(f(1), 7));
        assert!(pages.contains(f(1), 9), "hole page cached under itself");
        assert!(pages.cache().contains(f(5), 71), "mapped page canonical");
        assert!(!pages.cache().contains(f(1), 7), "no logical alias stored");
    }

    #[test]
    fn unmapped_files_behave_exactly_as_before() {
        let mut pages = SharedPages::new(1 << 20);
        pages.insert_range(f(3), 10, 5);
        assert!(pages.contains(f(3), 12));
        assert!(pages.touch(f(3), 12));
        assert!(!pages.touch(f(3), 99));
        assert_eq!(pages.resident_of(f(3)), 5);
        let done = SimTime::from_nanos(100);
        pages.insert_window(f(3), 50, 4, done);
        assert_eq!(pages.completion_of(f(3), 52), Some(done));
        pages.cancel_window(f(3), 50, 4, done);
        assert_eq!(pages.completion_of(f(3), 52), None);
        pages.drop_cache();
        assert_eq!(pages.resident_of(f(3)), 0);
    }
}
