//! The host OS page cache, shared by all VMs.
//!
//! §3.4: "The OS page cache can play an important role in accelerating VM
//! page faults." The cache is the mechanism behind three paper results:
//!
//! - the `Cached` reference setting pre-populates it, so every fault is a
//!   fast minor fault;
//! - FaaSnap's concurrent-paging loader populates it *during* execution so
//!   guest faults opportunistically become minor faults;
//! - in same-snapshot bursts, VMs "are in effect loading the cache for
//!   each other" (§6.6), while REAP's O_DIRECT reads bypass it.
//!
//! The model is an exact LRU over `(file, page)` keys with a lazily
//! compacted recency queue, plus explicit drop operations mirroring the
//! evaluation's `drop_caches` between runs (§6.1).

use std::collections::VecDeque;

use sim_core::detmap::DetMap;
use sim_storage::file::FileId;

/// Key of one cached file page.
type Key = (FileId, u64);

/// The host page cache.
#[derive(Clone, Debug)]
pub struct PageCache {
    /// Maximum resident pages (host memory budget for the cache).
    capacity_pages: u64,
    /// Page -> recency stamp of the most recent touch. Insertion-ordered
    /// deterministic map; the eviction rebuild path sorts by stamp, so it
    /// never depends on iteration order.
    resident: DetMap<Key, u64>,
    /// Recency queue: (stamp, key); stale entries skipped on eviction.
    queue: VecDeque<(u64, Key)>,
    next_stamp: u64,
    /// Cumulative counters.
    insertions: u64,
    evictions: u64,
    hits: u64,
    misses: u64,
}

impl PageCache {
    /// Creates a cache bounded to `capacity_pages` resident pages.
    pub fn new(capacity_pages: u64) -> Self {
        assert!(capacity_pages > 0, "page cache capacity must be positive");
        PageCache {
            capacity_pages,
            resident: DetMap::new(),
            queue: VecDeque::new(),
            next_stamp: 0,
            insertions: 0,
            evictions: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> u64 {
        self.resident.len() as u64
    }

    /// True if `page` of `file` is cached. Does not update recency or
    /// hit/miss counters (pure query, e.g. for `mincore`).
    pub fn contains(&self, file: FileId, page: u64) -> bool {
        self.resident.contains_key(&(file, page))
    }

    /// Lookup on the fault path: updates recency and hit/miss counters.
    pub fn touch(&mut self, file: FileId, page: u64) -> bool {
        let stamp = self.bump();
        match self.resident.get_mut(&(file, page)) {
            Some(s) => {
                *s = stamp;
                self.queue.push_back((stamp, (file, page)));
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Inserts one page (idempotent; refreshes recency if present).
    pub fn insert(&mut self, file: FileId, page: u64) {
        let stamp = self.bump();
        let prev = self.resident.insert((file, page), stamp);
        self.queue.push_back((stamp, (file, page)));
        if prev.is_none() {
            self.insertions += 1;
            self.evict_if_needed();
        }
    }

    /// Inserts `len` consecutive pages starting at `start`.
    pub fn insert_range(&mut self, file: FileId, start: u64, len: u64) {
        for p in start..start + len {
            self.insert(file, p);
        }
    }

    /// Number of pages of `file` currently cached.
    pub fn resident_of(&self, file: FileId) -> u64 {
        self.resident.keys().filter(|(f, _)| *f == file).count() as u64
    }

    /// Number of cached pages of `file` within `[start, start + len)`.
    pub fn resident_in(&self, file: FileId, start: u64, len: u64) -> u64 {
        self.resident
            .keys()
            .filter(|(f, p)| *f == file && (start..start + len).contains(p))
            .count() as u64
    }

    /// Drops every cached page of `file` (per-file cache drop).
    pub fn drop_file(&mut self, file: FileId) {
        self.resident.retain(|(f, _), _| *f != file);
    }

    /// Drops everything (`echo 3 > /proc/sys/vm/drop_caches`).
    pub fn drop_all(&mut self) {
        self.resident.clear();
        self.queue.clear();
    }

    /// `(hits, misses)` on the fault path so far.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn bump(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    fn evict_if_needed(&mut self) {
        while self.resident.len() as u64 > self.capacity_pages {
            match self.queue.pop_front() {
                Some((stamp, key)) => {
                    // Skip stale queue entries (the page was touched again
                    // later, or already dropped).
                    if self.resident.get(&key) == Some(&stamp) {
                        self.resident.remove(&key);
                        self.evictions += 1;
                    }
                }
                None => {
                    // Queue exhausted (can happen after drop_file left the
                    // queue stale); rebuild from the resident map. This is
                    // rare and keeps eviction exact.
                    let mut entries: Vec<(u64, Key)> =
                        self.resident.iter().map(|(k, s)| (*s, *k)).collect();
                    entries.sort_unstable();
                    self.queue = entries.into();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u64) -> FileId {
        FileId(id)
    }

    #[test]
    fn insert_and_query() {
        let mut c = PageCache::new(100);
        assert!(!c.contains(f(1), 5));
        c.insert(f(1), 5);
        assert!(c.contains(f(1), 5));
        assert!(!c.contains(f(2), 5));
        assert_eq!(c.resident_pages(), 1);
    }

    #[test]
    fn insert_range_and_per_file_count() {
        let mut c = PageCache::new(100);
        c.insert_range(f(1), 10, 5);
        c.insert_range(f(2), 0, 3);
        assert_eq!(c.resident_of(f(1)), 5);
        assert_eq!(c.resident_of(f(2)), 3);
        assert_eq!(c.resident_pages(), 8);
    }

    #[test]
    fn touch_tracks_hits_and_misses() {
        let mut c = PageCache::new(100);
        c.insert(f(1), 1);
        assert!(c.touch(f(1), 1));
        assert!(!c.touch(f(1), 2));
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = PageCache::new(3);
        c.insert(f(1), 0);
        c.insert(f(1), 1);
        c.insert(f(1), 2);
        // Touch page 0 so page 1 is the LRU victim.
        assert!(c.touch(f(1), 0));
        c.insert(f(1), 3);
        assert!(c.contains(f(1), 0), "recently touched survives");
        assert!(!c.contains(f(1), 1), "LRU page evicted");
        assert!(c.contains(f(1), 2));
        assert!(c.contains(f(1), 3));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn idempotent_insert_does_not_grow() {
        let mut c = PageCache::new(2);
        c.insert(f(1), 0);
        c.insert(f(1), 0);
        c.insert(f(1), 0);
        assert_eq!(c.resident_pages(), 1);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn drop_file_only_affects_that_file() {
        let mut c = PageCache::new(100);
        c.insert_range(f(1), 0, 10);
        c.insert_range(f(2), 0, 10);
        c.drop_file(f(1));
        assert_eq!(c.resident_of(f(1)), 0);
        assert_eq!(c.resident_of(f(2)), 10);
    }

    #[test]
    fn drop_all_clears() {
        let mut c = PageCache::new(100);
        c.insert_range(f(1), 0, 50);
        c.drop_all();
        assert_eq!(c.resident_pages(), 0);
    }

    #[test]
    fn eviction_after_drop_file_rebuild() {
        let mut c = PageCache::new(5);
        c.insert_range(f(1), 0, 5);
        c.drop_file(f(1)); // queue now entirely stale
        c.insert_range(f(2), 0, 7); // forces eviction through rebuild path
        assert_eq!(c.resident_pages(), 5);
        assert!(c.contains(f(2), 6));
        assert!(!c.contains(f(2), 0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        PageCache::new(0);
    }
}
