//! Simulated host memory management.
//!
//! This crate models the parts of the Linux host kernel that determine
//! snapshot-restore performance in the FaaSnap paper:
//!
//! - [`addr`] — guest-physical page numbers and ranges.
//! - [`vma`] — the VMM's virtual memory areas over the guest region,
//!   including `MAP_FIXED` overlay semantics used by FaaSnap's
//!   *hierarchical overlapping mappings* (§4.8): an anonymous base mapping,
//!   non-zero regions overlaid onto the memory file, and loading-set
//!   regions overlaid onto the loading-set file.
//! - [`page_table`] — per-address-space page presence (three states:
//!   unmapped, host-PTE-only as after `UFFDIO_COPY`, fully mapped) and RSS
//!   accounting.
//! - [`page_cache`] — the host page cache shared by all VMs: LRU, explicit
//!   drop (the evaluation drops caches before each test), and warm-up for
//!   the `Cached` reference setting.
//! - [`share`] — snapshot-keyed shared page state: the cache and in-flight
//!   registries bundled behind canonical content-addressed chunk identity,
//!   so concurrent restores of snapshots sharing chunks (fork siblings)
//!   share hits and deduplicate reads.
//! - [`fault`] — classification and cost/IO planning for guest page faults
//!   (anonymous zero-fill vs. minor vs. major vs. `userfaultfd`).
//! - [`mincore`] — the `mincore(2)` model used by FaaSnap's host page
//!   recording (§4.4): file-backed pages are "in core" iff cached, so
//!   readahead-fetched pages are recorded into the working set.
//! - [`userfaultfd`] — registration of ranges for user-level fault
//!   handling (REAP's mechanism).
//! - [`costs`] — calibrated fault-cost constants with the paper sentences
//!   they come from.

#![forbid(unsafe_code)]
pub mod addr;
pub mod costs;
pub mod fault;
pub mod inflight;
pub mod mincore;
pub mod page_cache;
pub mod page_table;
pub mod share;
pub mod userfaultfd;
pub mod vma;

pub use addr::{PageNum, PageRange};
pub use costs::FaultCosts;
pub use fault::{FaultOutcome, FaultResolver};
pub use inflight::InflightIo;
pub use page_cache::PageCache;
pub use page_table::{PageState, PageTable};
pub use share::{ShareMap, SharedPages};
pub use userfaultfd::UffdRegistry;
pub use vma::{AddressSpace, Backing, Vma};
