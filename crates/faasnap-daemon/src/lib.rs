//! The FaaSnap platform daemon.
//!
//! The paper's daemon "manages local VM images, guest kernels, snapshot
//! memory and working set files, active VMs, and network resources" and
//! "exposes an API to allow remote clients to control resources and send
//! invocation requests" (§4.1). This crate is that layer over the
//! simulated host:
//!
//! - [`registry`] — functions and their recorded snapshot artifacts.
//! - [`platform`] — the daemon API: register a function, run its record
//!   phase, invoke it under any restore strategy (with the evaluation's
//!   drop-caches hygiene), and run bursty workloads (§6.6) on shared host
//!   resources.
//! - [`config`] — JSON experiment configurations mirroring the artifact's
//!   `test-2inputs.json` / `test-6inputs.json` files.
//! - [`kv`] — the host-local Redis analog functions use for input/output
//!   state (§5).
//! - [`metrics`] — repetition aggregation (mean ± stddev, as the paper
//!   reports) and text-table rendering for experiment output.
//! - [`observe`] — traced invocations (the artifact's Zipkin analog):
//!   real spans emitted by the runtime, exported via `faasnap-obs`.

#![forbid(unsafe_code)]
pub mod config;
pub mod kv;
pub mod metrics;
pub mod observe;
pub mod platform;
pub mod policy;
pub mod registry;

pub use config::ExperimentConfig;
pub use kv::{KvStore, KvValue};
pub use metrics::{MeasuredCell, TextTable};
pub use observe::{traced_invoke, TraceRun};
pub use platform::{BurstKind, InvokeError, Platform};
pub use policy::{simulate_policy, ModeLatencies, Policy, ServingMode};
pub use registry::FunctionRegistry;
