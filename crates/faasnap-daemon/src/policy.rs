//! Serving-mode policy: warm VMs vs. snapshots vs. cold starts (§7.1).
//!
//! "For the most frequent functions, keeping warm VMs alive and using warm
//! starts is the best choice. Snapshots are useful for less frequently
//! executed functions where keeping warm VMs has more overhead than
//! benefit. ... For very cold functions that are rarely invoked, snapshots
//! are likely not worth the storage and management costs."
//!
//! [`simulate_policy`] replays an invocation arrival sequence under a
//! keep-alive policy (à la AWS Lambda's 15–60-minute window, §2.1) and
//! accounts both latency (warm / snapshot-restore / cold per invocation)
//! and resource cost (memory-seconds of idle warm VMs, storage-seconds of
//! snapshot files), so the §7.1 crossovers can be computed instead of
//! argued.

use faas_workloads::Input;
use faasnap::strategy::RestoreStrategy;
use sim_core::time::{SimDuration, SimTime};

use crate::platform::Platform;

/// How one invocation was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServingMode {
    /// A live warm VM existed.
    Warm,
    /// Restored from a snapshot.
    Snapshot,
    /// Full cold start.
    Cold,
}

/// Per-mode invocation latencies (measure them with the platform; the
/// defaults below are the reproduction's `image` numbers).
#[derive(Clone, Copy, Debug)]
pub struct ModeLatencies {
    /// Warm-start latency.
    pub warm: SimDuration,
    /// Snapshot-restore latency (e.g. FaaSnap's).
    pub snapshot: SimDuration,
    /// Cold-start latency (boot + runtime init + run).
    pub cold: SimDuration,
}

impl Default for ModeLatencies {
    fn default() -> Self {
        ModeLatencies {
            warm: SimDuration::from_millis(37),
            snapshot: SimDuration::from_millis(112),
            cold: SimDuration::from_millis(2100),
        }
    }
}

impl ModeLatencies {
    /// Measures the three mode latencies for one function against the
    /// live platform, so policy analysis runs on that function's actual
    /// numbers instead of the `image` defaults. Records artifacts under
    /// `label` first if none exist (using the function's input A, per the
    /// standard record protocol); warm and snapshot latencies are each
    /// one test-phase invocation with `input`, and the cold latency is
    /// the host's boot-path cost plus the warm invocation.
    pub fn measure(
        p: &mut Platform,
        name: &str,
        label: &str,
        input: &Input,
    ) -> Result<ModeLatencies, String> {
        if p.registry().artifacts(name, label).is_none() {
            let rec = p
                .registry()
                .function(name)
                .ok_or_else(|| format!("unknown function {name}"))?
                .input_a();
            p.record(name, label, &rec)?;
        }
        let warm = p
            .invoke(name, label, input, RestoreStrategy::Warm)?
            .report
            .total_time();
        let snapshot = p
            .invoke(name, label, input, RestoreStrategy::faasnap())?
            .report
            .total_time();
        let cold = p.host().boot.cold_start() + warm;
        Ok(ModeLatencies {
            warm,
            snapshot,
            cold,
        })
    }
}

/// The provider's keep-alive / snapshot configuration.
#[derive(Clone, Copy, Debug)]
pub struct Policy {
    /// How long a VM stays warm after an invocation (None = never kept).
    pub warm_ttl: Option<SimDuration>,
    /// Whether a snapshot exists for the function.
    pub keep_snapshot: bool,
}

/// Resource prices: relative units are enough for crossover analysis.
#[derive(Clone, Copy, Debug)]
pub struct Costs {
    /// Cost of keeping one warm VM resident, per GB-second.
    pub memory_per_gb_s: f64,
    /// Cost of snapshot storage, per GB-second.
    pub storage_per_gb_s: f64,
    /// Warm VM memory footprint (GB).
    pub vm_memory_gb: f64,
    /// Snapshot file size (GB).
    pub snapshot_gb: f64,
}

impl Default for Costs {
    fn default() -> Self {
        // Memory ~50x more expensive than SSD storage per byte-second.
        Costs {
            memory_per_gb_s: 1.0,
            storage_per_gb_s: 0.02,
            vm_memory_gb: 2.0,
            snapshot_gb: 2.0,
        }
    }
}

/// Aggregate outcome of a policy over an arrival sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyOutcome {
    /// Invocations served per mode: (warm, snapshot, cold).
    pub served: (u64, u64, u64),
    /// Mean invocation latency.
    pub mean_latency: SimDuration,
    /// Total resource cost (idle memory + snapshot storage) in cost units.
    pub resource_cost: f64,
}

/// Replays invocations at the given arrival instants under `policy`.
pub fn simulate_policy(
    arrivals: &[SimTime],
    policy: Policy,
    latencies: ModeLatencies,
    costs: Costs,
) -> PolicyOutcome {
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be sorted"
    );
    let mut warm_until: Option<SimTime> = None;
    let mut served = (0u64, 0u64, 0u64);
    let mut total_latency = SimDuration::ZERO;
    let mut idle_memory_s = 0.0;
    let mut prev_arrival: Option<SimTime> = None;

    for &t in arrivals {
        let mode = match warm_until {
            Some(until) if t <= until => ServingMode::Warm,
            _ => {
                if policy.keep_snapshot {
                    ServingMode::Snapshot
                } else {
                    ServingMode::Cold
                }
            }
        };
        match mode {
            ServingMode::Warm => {
                served.0 += 1;
                total_latency += latencies.warm;
            }
            ServingMode::Snapshot => {
                served.1 += 1;
                total_latency += latencies.snapshot;
            }
            ServingMode::Cold => {
                served.2 += 1;
                total_latency += latencies.cold;
            }
        }
        // Idle memory actually consumed since the last invocation.
        if let (Some(until), Some(prev)) = (warm_until, prev_arrival) {
            let idle_end = until.min(t);
            if idle_end > prev {
                idle_memory_s += (idle_end - prev).as_secs_f64();
            }
        }
        prev_arrival = Some(t);
        warm_until = policy.warm_ttl.map(|ttl| t + ttl);
    }
    // Tail idle window after the last invocation.
    if let (Some(until), Some(&last)) = (warm_until, arrivals.last()) {
        idle_memory_s += (until - last).as_secs_f64();
    }

    let span = match (arrivals.first(), arrivals.last()) {
        (Some(&a), Some(&b)) => (b - a).as_secs_f64().max(1.0),
        _ => 0.0,
    };
    let storage_s = if policy.keep_snapshot { span } else { 0.0 };
    let n = arrivals.len().max(1) as u64;
    PolicyOutcome {
        served,
        mean_latency: total_latency / n,
        resource_cost: idle_memory_s * costs.memory_per_gb_s * costs.vm_memory_gb
            + storage_s * costs.storage_per_gb_s * costs.snapshot_gb,
    }
}

/// Picks the cheapest policy meeting a mean-latency target, among
/// {always-warm, snapshot-only, cold-only}, for a periodic arrival rate.
/// Returns the winning mode label — the §7.1 decision.
pub fn best_mode_for_period(
    period: SimDuration,
    horizon: SimDuration,
    warm_ttl: SimDuration,
    latencies: ModeLatencies,
    costs: Costs,
    latency_weight: f64,
) -> ServingMode {
    let n = (horizon.as_secs_f64() / period.as_secs_f64()).max(1.0) as u64;
    let arrivals: Vec<SimTime> = (0..n).map(|i| SimTime::ZERO + period * i).collect();
    let candidates = [
        (
            ServingMode::Warm,
            Policy {
                warm_ttl: Some(warm_ttl),
                keep_snapshot: true,
            },
        ),
        (
            ServingMode::Snapshot,
            Policy {
                warm_ttl: None,
                keep_snapshot: true,
            },
        ),
        (
            ServingMode::Cold,
            Policy {
                warm_ttl: None,
                keep_snapshot: false,
            },
        ),
    ];
    let mut best = (ServingMode::Cold, f64::INFINITY);
    for (mode, policy) in candidates {
        let out = simulate_policy(&arrivals, policy, latencies, costs);
        let score = out.resource_cost + latency_weight * out.mean_latency.as_secs_f64() * n as f64;
        if score < best.1 {
            best = (mode, score);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every(period_s: u64, n: u64) -> Vec<SimTime> {
        (0..n)
            .map(|i| SimTime::from_nanos(i * period_s * 1_000_000_000))
            .collect()
    }

    #[test]
    fn warm_ttl_serves_frequent_invocations_warm() {
        let arrivals = every(10, 100); // every 10 s
        let out = simulate_policy(
            &arrivals,
            Policy {
                warm_ttl: Some(SimDuration::from_secs(60)),
                keep_snapshot: true,
            },
            ModeLatencies::default(),
            Costs::default(),
        );
        assert_eq!(out.served.0, 99, "all but the first are warm");
        assert_eq!(out.served.1, 1);
        assert!(out.mean_latency < SimDuration::from_millis(50));
    }

    #[test]
    fn expired_ttl_falls_back_to_snapshot() {
        let arrivals = every(3600, 10); // hourly
        let out = simulate_policy(
            &arrivals,
            Policy {
                warm_ttl: Some(SimDuration::from_secs(60)),
                keep_snapshot: true,
            },
            ModeLatencies::default(),
            Costs::default(),
        );
        assert_eq!(out.served, (0, 10, 0));
    }

    #[test]
    fn no_snapshot_means_cold() {
        let arrivals = every(3600, 5);
        let out = simulate_policy(
            &arrivals,
            Policy {
                warm_ttl: None,
                keep_snapshot: false,
            },
            ModeLatencies::default(),
            Costs::default(),
        );
        assert_eq!(out.served, (0, 0, 5));
        assert_eq!(out.mean_latency, ModeLatencies::default().cold);
    }

    #[test]
    fn crossovers_follow_frequency() {
        // §7.1: frequent -> warm; infrequent -> snapshot; the latency
        // weight makes cold uncompetitive unless storage dominates.
        let l = ModeLatencies::default();
        let c = Costs::default();
        let horizon = SimDuration::from_secs(24 * 3600);
        let ttl = SimDuration::from_secs(600);
        let frequent = best_mode_for_period(SimDuration::from_secs(30), horizon, ttl, l, c, 1000.0);
        assert_eq!(frequent, ServingMode::Warm);
        let hourly = best_mode_for_period(SimDuration::from_secs(7200), horizon, ttl, l, c, 1000.0);
        assert_eq!(hourly, ServingMode::Snapshot);
        // With latency nearly free, storage cost pushes rare functions cold.
        let rare = best_mode_for_period(
            SimDuration::from_secs(23 * 3600),
            horizon,
            ttl,
            l,
            c,
            0.00001,
        );
        assert_eq!(rare, ServingMode::Cold);
    }

    #[test]
    fn resource_cost_scales_with_ttl() {
        let arrivals = every(120, 20);
        let short = simulate_policy(
            &arrivals,
            Policy {
                warm_ttl: Some(SimDuration::from_secs(10)),
                keep_snapshot: true,
            },
            ModeLatencies::default(),
            Costs::default(),
        );
        let long = simulate_policy(
            &arrivals,
            Policy {
                warm_ttl: Some(SimDuration::from_secs(130)),
                keep_snapshot: true,
            },
            ModeLatencies::default(),
            Costs::default(),
        );
        assert!(long.resource_cost > short.resource_cost);
        assert!(long.served.0 > short.served.0);
    }

    #[test]
    fn measured_latencies_order_sanely() {
        use sim_storage::profiles::DiskProfile;
        let mut p = Platform::new(DiskProfile::nvme_c5d(), 7);
        p.register(faas_workloads::by_name("hello-world").unwrap());
        let f = faas_workloads::by_name("hello-world").unwrap();
        let l = ModeLatencies::measure(&mut p, "hello-world", "m", &f.input_b()).unwrap();
        assert!(
            l.warm < l.snapshot,
            "warm {:?} < snapshot {:?}",
            l.warm,
            l.snapshot
        );
        assert!(
            l.snapshot < l.cold,
            "snapshot {:?} < cold {:?}",
            l.snapshot,
            l.cold
        );
        // Measuring records artifacts on demand.
        assert!(p.registry().artifacts("hello-world", "m").is_some());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_arrivals_panic() {
        let arrivals = vec![SimTime::from_nanos(5), SimTime::from_nanos(1)];
        simulate_policy(
            &arrivals,
            Policy {
                warm_ttl: None,
                keep_snapshot: true,
            },
            ModeLatencies::default(),
            Costs::default(),
        );
    }
}
