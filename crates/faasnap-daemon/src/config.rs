//! JSON experiment configurations.
//!
//! The released FaaSnap artifact drives its evaluation with JSON configs
//! (`test-2inputs.json` for Figures 6/7/10/11, `test-6inputs.json` for
//! Figure 8 — see the paper's artifact appendix). This module mirrors
//! that interface so experiments are declarative and serializable.

use serde::{Deserialize, Serialize};

use faasnap::strategy::{FaasnapConfig, RestoreStrategy};
use sim_storage::profiles::DiskProfile;

/// A declarative experiment configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Functions to run (Table 2 names).
    pub functions: Vec<String>,
    /// Restore strategies: `"warm"`, `"firecracker"` (vanilla),
    /// `"cached"`, `"reap"`, `"faasnap"`, `"con-paging"`, `"per-region"`.
    pub strategies: Vec<String>,
    /// Repetitions per data point (the paper uses 5 for Figure 6, 3 for
    /// Figures 8 and 11).
    pub repetitions: u32,
    /// Storage: `"nvme"` (local SSD) or `"ebs"` (remote block storage).
    pub device: String,
    /// Burst parallelism levels (Figure 10); empty for non-burst tests.
    #[serde(default)]
    pub parallelism: Vec<u32>,
    /// Test-phase input size ratios (Figure 8); empty means the standard
    /// A→B / B→A two-input protocol.
    #[serde(default)]
    pub input_ratios: Vec<f64>,
    /// Deterministic seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The standard two-input configuration (Figures 6 and 7).
    pub fn test_2inputs() -> Self {
        ExperimentConfig {
            functions: faas_workloads::all_functions()
                .iter()
                .map(|f| f.name().to_string())
                .collect(),
            strategies: vec![
                "firecracker".into(),
                "reap".into(),
                "faasnap".into(),
                "cached".into(),
            ],
            repetitions: 5,
            device: "nvme".into(),
            parallelism: vec![],
            input_ratios: vec![],
            seed: 0xFAA5,
        }
    }

    /// The six-input ratio sweep (Figure 8).
    pub fn test_6inputs() -> Self {
        let mut c = Self::test_2inputs();
        c.repetitions = 3;
        c.input_ratios = vec![0.25, 0.5, 1.0, 2.0, 4.0];
        c
    }

    /// Parses a strategy name.
    pub fn parse_strategy(name: &str) -> Result<RestoreStrategy, String> {
        Ok(match name {
            "warm" => RestoreStrategy::Warm,
            "firecracker" | "vanilla" => RestoreStrategy::Vanilla,
            "cached" => RestoreStrategy::Cached,
            "reap" => RestoreStrategy::Reap,
            "faasnap" => RestoreStrategy::faasnap(),
            "con-paging" => RestoreStrategy::FaaSnap(FaasnapConfig::concurrent_paging_only()),
            "per-region" => RestoreStrategy::FaaSnap(FaasnapConfig::per_region()),
            other => return Err(format!("unknown strategy {other:?}")),
        })
    }

    /// Parsed strategies, in order.
    pub fn restore_strategies(&self) -> Result<Vec<RestoreStrategy>, String> {
        self.strategies.iter().map(|s| Self::parse_strategy(s)).collect()
    }

    /// The disk profile for `device`.
    pub fn disk_profile(&self) -> Result<DiskProfile, String> {
        match self.device.as_str() {
            "nvme" => Ok(DiskProfile::nvme_c5d()),
            "ebs" => Ok(DiskProfile::ebs_io2()),
            other => Err(format!("unknown device {other:?}")),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_json() {
        let c = ExperimentConfig::test_2inputs();
        let json = c.to_json();
        let back = ExperimentConfig::from_json(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(
            ExperimentConfig::parse_strategy("firecracker").unwrap(),
            RestoreStrategy::Vanilla
        );
        assert_eq!(
            ExperimentConfig::parse_strategy("faasnap").unwrap(),
            RestoreStrategy::faasnap()
        );
        assert!(ExperimentConfig::parse_strategy("bogus").is_err());
    }

    #[test]
    fn default_configs() {
        let c2 = ExperimentConfig::test_2inputs();
        assert_eq!(c2.functions.len(), 12);
        assert_eq!(c2.repetitions, 5);
        assert!(c2.input_ratios.is_empty());
        let c6 = ExperimentConfig::test_6inputs();
        assert_eq!(c6.input_ratios.len(), 5);
        assert_eq!(c6.repetitions, 3);
    }

    #[test]
    fn device_profiles() {
        let mut c = ExperimentConfig::test_2inputs();
        assert_eq!(c.disk_profile().unwrap().name, "nvme-c5d");
        c.device = "ebs".into();
        assert_eq!(c.disk_profile().unwrap().name, "ebs-io2");
        c.device = "floppy".into();
        assert!(c.disk_profile().is_err());
    }

    #[test]
    fn missing_optional_fields_default() {
        let json = r#"{
            "functions": ["json"],
            "strategies": ["faasnap"],
            "repetitions": 1,
            "device": "nvme",
            "seed": 1
        }"#;
        let c = ExperimentConfig::from_json(json).unwrap();
        assert!(c.parallelism.is_empty());
        assert!(c.input_ratios.is_empty());
    }
}
