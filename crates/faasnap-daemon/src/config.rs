//! JSON experiment configurations.
//!
//! The released FaaSnap artifact drives its evaluation with JSON configs
//! (`test-2inputs.json` for Figures 6/7/10/11, `test-6inputs.json` for
//! Figure 8 — see the paper's artifact appendix). This module mirrors
//! that interface so experiments are declarative and serializable.

use faasnap::strategy::{FaasnapConfig, RestoreStrategy};
use sim_core::json::{self, Value};
use sim_storage::profiles::DiskProfile;

/// A declarative experiment configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentConfig {
    /// Functions to run (Table 2 names).
    pub functions: Vec<String>,
    /// Restore strategies: `"warm"`, `"firecracker"` (vanilla),
    /// `"cached"`, `"reap"`, `"faasnap"`, `"con-paging"`, `"per-region"`.
    pub strategies: Vec<String>,
    /// Repetitions per data point (the paper uses 5 for Figure 6, 3 for
    /// Figures 8 and 11).
    pub repetitions: u32,
    /// Storage: `"nvme"` (local SSD) or `"ebs"` (remote block storage).
    pub device: String,
    /// Burst parallelism levels (Figure 10); empty for non-burst tests.
    /// Optional in the JSON form.
    pub parallelism: Vec<u32>,
    /// Test-phase input size ratios (Figure 8); empty means the standard
    /// A→B / B→A two-input protocol. Optional in the JSON form.
    pub input_ratios: Vec<f64>,
    /// Deterministic seed.
    pub seed: u64,
}

/// Pulls a required field out of a parsed config object.
fn required<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("config: missing field {key:?}"))
}

fn string_list(v: &Value, key: &str) -> Result<Vec<String>, String> {
    required(v, key)?
        .as_array()
        .ok_or_else(|| format!("config: {key} must be an array"))?
        .iter()
        .map(|e| {
            e.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("config: {key} entries must be strings"))
        })
        .collect()
}

impl ExperimentConfig {
    /// The standard two-input configuration (Figures 6 and 7).
    pub fn test_2inputs() -> Self {
        ExperimentConfig {
            functions: faas_workloads::all_functions()
                .iter()
                .map(|f| f.name().to_string())
                .collect(),
            strategies: vec![
                "firecracker".into(),
                "reap".into(),
                "faasnap".into(),
                "cached".into(),
            ],
            repetitions: 5,
            device: "nvme".into(),
            parallelism: vec![],
            input_ratios: vec![],
            seed: 0xFAA5,
        }
    }

    /// The six-input ratio sweep (Figure 8).
    pub fn test_6inputs() -> Self {
        let mut c = Self::test_2inputs();
        c.repetitions = 3;
        c.input_ratios = vec![0.25, 0.5, 1.0, 2.0, 4.0];
        c
    }

    /// Parses a strategy name.
    pub fn parse_strategy(name: &str) -> Result<RestoreStrategy, String> {
        Ok(match name {
            "warm" => RestoreStrategy::Warm,
            "firecracker" | "vanilla" => RestoreStrategy::Vanilla,
            "cached" => RestoreStrategy::Cached,
            "reap" => RestoreStrategy::Reap,
            "faasnap" => RestoreStrategy::faasnap(),
            "con-paging" => RestoreStrategy::FaaSnap(FaasnapConfig::concurrent_paging_only()),
            "per-region" => RestoreStrategy::FaaSnap(FaasnapConfig::per_region()),
            other => return Err(format!("unknown strategy {other:?}")),
        })
    }

    /// Parsed strategies, in order.
    pub fn restore_strategies(&self) -> Result<Vec<RestoreStrategy>, String> {
        self.strategies
            .iter()
            .map(|s| Self::parse_strategy(s))
            .collect()
    }

    /// The disk profile for `device`.
    pub fn disk_profile(&self) -> Result<DiskProfile, String> {
        match self.device.as_str() {
            "nvme" => Ok(DiskProfile::nvme_c5d()),
            "ebs" => Ok(DiskProfile::ebs_io2()),
            other => Err(format!("unknown device {other:?}")),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        Value::object()
            .with("functions", self.functions.clone())
            .with("strategies", self.strategies.clone())
            .with("repetitions", self.repetitions)
            .with("device", self.device.as_str())
            .with("parallelism", self.parallelism.clone())
            .with("input_ratios", self.input_ratios.clone())
            .with("seed", self.seed)
            .to_string_pretty()
    }

    /// Parses from JSON. `parallelism` and `input_ratios` default to
    /// empty when absent.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = json::parse(s).map_err(|e| e.to_string())?;
        let repetitions = required(&v, "repetitions")?
            .as_u64()
            .and_then(|r| u32::try_from(r).ok())
            .ok_or("config: repetitions must be a u32")?;
        let device = required(&v, "device")?
            .as_str()
            .ok_or("config: device must be a string")?
            .to_string();
        let seed = required(&v, "seed")?
            .as_u64()
            .ok_or("config: seed must be a u64")?;
        let parallelism = match v.get("parallelism") {
            None => Vec::new(),
            Some(p) => p
                .as_array()
                .ok_or("config: parallelism must be an array")?
                .iter()
                .map(|e| {
                    e.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| "config: parallelism entries must be u32".to_string())
                })
                .collect::<Result<_, _>>()?,
        };
        let input_ratios = match v.get("input_ratios") {
            None => Vec::new(),
            Some(p) => p
                .as_array()
                .ok_or("config: input_ratios must be an array")?
                .iter()
                .map(|e| {
                    e.as_f64()
                        .ok_or_else(|| "config: input_ratios entries must be numbers".to_string())
                })
                .collect::<Result<_, _>>()?,
        };
        Ok(ExperimentConfig {
            functions: string_list(&v, "functions")?,
            strategies: string_list(&v, "strategies")?,
            repetitions,
            device,
            parallelism,
            input_ratios,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_json() {
        let c = ExperimentConfig::test_2inputs();
        let json = c.to_json();
        let back = ExperimentConfig::from_json(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(
            ExperimentConfig::parse_strategy("firecracker").unwrap(),
            RestoreStrategy::Vanilla
        );
        assert_eq!(
            ExperimentConfig::parse_strategy("faasnap").unwrap(),
            RestoreStrategy::faasnap()
        );
        assert!(ExperimentConfig::parse_strategy("bogus").is_err());
    }

    #[test]
    fn default_configs() {
        let c2 = ExperimentConfig::test_2inputs();
        assert_eq!(c2.functions.len(), 12);
        assert_eq!(c2.repetitions, 5);
        assert!(c2.input_ratios.is_empty());
        let c6 = ExperimentConfig::test_6inputs();
        assert_eq!(c6.input_ratios.len(), 5);
        assert_eq!(c6.repetitions, 3);
    }

    #[test]
    fn device_profiles() {
        let mut c = ExperimentConfig::test_2inputs();
        assert_eq!(c.disk_profile().unwrap().name, "nvme-c5d");
        c.device = "ebs".into();
        assert_eq!(c.disk_profile().unwrap().name, "ebs-io2");
        c.device = "floppy".into();
        assert!(c.disk_profile().is_err());
    }

    #[test]
    fn missing_optional_fields_default() {
        let json = r#"{
            "functions": ["json"],
            "strategies": ["faasnap"],
            "repetitions": 1,
            "device": "nvme",
            "seed": 1
        }"#;
        let c = ExperimentConfig::from_json(json).unwrap();
        assert!(c.parallelism.is_empty());
        assert!(c.input_ratios.is_empty());
    }
}
