//! Function and artifact registry.
//!
//! The daemon keeps, per registered function: its calibrated model, and —
//! once the record phase has run — the snapshot artifacts (warm snapshot,
//! working sets, loading-set file) used by test-phase invocations.

use std::collections::BTreeMap;

use faas_workloads::{Function, Input};
use faasnap::artifacts::{try_record_phase_with, RecordOptions, SnapshotArtifacts};
use faasnap::runtime::Host;
use sim_storage::file::DeviceId;

/// A registered function plus its recorded artifacts.
pub struct FunctionEntry {
    /// The function model.
    pub function: Function,
    /// Artifacts from the most recent record phase, keyed by a label
    /// (different record inputs produce different artifacts).
    pub artifacts: BTreeMap<String, SnapshotArtifacts>,
}

/// The daemon's function registry.
#[derive(Default)]
pub struct FunctionRegistry {
    entries: BTreeMap<String, FunctionEntry>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a function (replacing any same-named entry).
    pub fn register(&mut self, function: Function) {
        self.entries.insert(
            function.name().to_string(),
            FunctionEntry {
                function,
                artifacts: BTreeMap::new(),
            },
        );
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// The function model for `name`.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.entries.get(name).map(|e| &e.function)
    }

    /// Runs the record phase for `name` with `record_input`, storing the
    /// artifacts under `label`. Returns an error for unknown functions and
    /// for record runs aborted by storage faults — in the latter case no
    /// artifacts are stored under `label` (complete or cleanly absent,
    /// never half-written).
    pub fn record(
        &mut self,
        host: &mut Host,
        name: &str,
        label: &str,
        record_input: &Input,
        device: DeviceId,
    ) -> Result<(), String> {
        let entry = self
            .entries
            .get_mut(name)
            .ok_or_else(|| format!("unknown function {name}"))?;
        let trace = entry.function.trace(record_input);
        let image = entry.function.boot_image();
        let artifacts = try_record_phase_with(
            host,
            &format!("{name}.{label}"),
            image,
            trace,
            device,
            RecordOptions::default(),
        )
        .map_err(|e| format!("record {name}.{label}: {e}"))?;
        entry.artifacts.insert(label.to_string(), artifacts);
        Ok(())
    }

    /// Fetches recorded artifacts.
    pub fn artifacts(&self, name: &str, label: &str) -> Option<&SnapshotArtifacts> {
        self.entries.get(name).and_then(|e| e.artifacts.get(label))
    }

    /// Registered function names (sorted).
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.entries.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_storage::profiles::DiskProfile;

    #[test]
    fn register_and_lookup() {
        let mut r = FunctionRegistry::new();
        r.register(faas_workloads::by_name("hello-world").unwrap());
        assert!(r.contains("hello-world"));
        assert!(!r.contains("nope"));
        assert_eq!(r.names(), vec!["hello-world"]);
        assert!(r.function("hello-world").is_some());
    }

    #[test]
    fn record_unknown_function_errors() {
        let mut r = FunctionRegistry::new();
        let mut host = Host::new(DiskProfile::nvme_c5d(), 1);
        let dev = host.primary_device();
        let input = Input::new(1.0, 0, 1);
        assert!(r.record(&mut host, "ghost", "a", &input, dev).is_err());
    }

    #[test]
    fn record_stores_artifacts() {
        let mut r = FunctionRegistry::new();
        let f = faas_workloads::by_name("hello-world").unwrap();
        let input = f.input_a();
        r.register(f);
        let mut host = Host::new(DiskProfile::nvme_c5d(), 1);
        let dev = host.primary_device();
        r.record(&mut host, "hello-world", "a", &input, dev)
            .unwrap();
        let a = r.artifacts("hello-world", "a").expect("artifacts stored");
        assert!(!a.ws.is_empty());
        assert!(r.artifacts("hello-world", "b").is_none());
    }
}
