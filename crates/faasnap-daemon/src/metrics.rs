//! Measurement aggregation and table rendering.
//!
//! The paper reports mean ± standard deviation over 3–5 repetitions
//! (§6.2, §6.3). [`MeasuredCell`] wraps a [`Summary`] with that
//! formatting; [`TextTable`] renders the aligned text tables the bench
//! harness prints for every figure.

use std::fmt;

use sim_core::stats::Summary;
use sim_core::time::SimDuration;

/// A mean ± stddev cell.
#[derive(Clone, Debug, Default)]
pub struct MeasuredCell {
    summary: Summary,
}

impl MeasuredCell {
    /// Creates an empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a duration sample in milliseconds.
    pub fn record(&mut self, d: SimDuration) {
        self.summary.record_ms(d);
    }

    /// Records a raw sample.
    pub fn record_value(&mut self, v: f64) {
        self.summary.record(v);
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// Standard deviation of the samples.
    pub fn stddev(&self) -> f64 {
        self.summary.stddev()
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.summary.count()
    }
}

impl fmt::Display for MeasuredCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count() <= 1 {
            write!(f, "{:.1}", self.mean())
        } else {
            write!(f, "{:.1} ±{:.1}", self.mean(), self.stddev())
        }
    }
}

/// A simple aligned text table.
#[derive(Clone, Debug)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_formatting() {
        let mut c = MeasuredCell::new();
        c.record(SimDuration::from_millis(100));
        assert_eq!(format!("{c}"), "100.0");
        c.record(SimDuration::from_millis(120));
        assert_eq!(format!("{c}"), "110.0 ±10.0");
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new("demo", &["function", "ms"]);
        t.row(vec!["hello-world".into(), "4.0".into()]);
        t.row(vec!["json".into(), "150.3".into()]);
        let s = format!("{t}");
        assert!(s.contains("== demo =="));
        assert!(s.contains("hello-world"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Right-aligned columns: both data lines end in the ms column.
        assert!(lines[3].ends_with("4.0"));
        assert!(lines[4].ends_with("150.3"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
