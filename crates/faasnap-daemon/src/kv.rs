//! External state storage for functions (the paper's host-local Redis).
//!
//! §5: "FaaS applications rely on external storage to store state,
//! including input, output, and intermediate data, that persists beyond
//! the lifetime of a function invocation. We run an in-memory Redis data
//! store on the host for external storage for functions."
//!
//! [`KvStore`] is that component: a deterministic in-memory key/value
//! store with a simple loopback-latency model, used by the platform to
//! stage function inputs (the artifact's setup "populates Redis with
//! input data") and collect outputs.

use std::collections::BTreeMap;

use sim_core::time::SimDuration;

/// A stored value: content identity plus size (payload bytes are not
/// materialized; functions consume them through their traces).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KvValue {
    /// Size in bytes.
    pub len: u64,
    /// Content fingerprint (e.g. an input's content seed).
    pub fingerprint: u64,
}

/// In-memory KV store with loopback access costs.
#[derive(Clone, Debug)]
pub struct KvStore {
    map: BTreeMap<String, KvValue>,
    /// Per-request round trip on the loopback interface.
    rtt: SimDuration,
    /// Payload streaming bandwidth (loopback is fast but not free).
    bytes_per_sec: u64,
    gets: u64,
    puts: u64,
}

impl Default for KvStore {
    fn default() -> Self {
        KvStore {
            map: BTreeMap::new(),
            rtt: SimDuration::from_micros(85),
            bytes_per_sec: 4_000_000_000, // ~4 GB/s loopback
            gets: 0,
            puts: 0,
        }
    }
}

impl KvStore {
    /// Creates a store with default loopback costs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `value` under `key`, returning the simulated request time.
    pub fn put(&mut self, key: impl Into<String>, value: KvValue) -> SimDuration {
        let cost = self.access_cost(value.len);
        self.map.insert(key.into(), value);
        self.puts += 1;
        cost
    }

    /// Fetches `key`; returns the value and the simulated request time.
    pub fn get(&mut self, key: &str) -> Option<(KvValue, SimDuration)> {
        self.gets += 1;
        let v = self.map.get(key)?.clone();
        let cost = self.access_cost(v.len);
        Some((v, cost))
    }

    /// Removes `key`.
    pub fn delete(&mut self, key: &str) -> bool {
        self.map.remove(key).is_some()
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total bytes stored.
    pub fn stored_bytes(&self) -> u64 {
        self.map.values().map(|v| v.len).sum()
    }

    /// `(gets, puts)` so far.
    pub fn ops(&self) -> (u64, u64) {
        (self.gets, self.puts)
    }

    fn access_cost(&self, len: u64) -> SimDuration {
        self.rtt + SimDuration::from_secs_f64(len as f64 / self.bytes_per_sec as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut kv = KvStore::new();
        let cost = kv.put(
            "input-a",
            KvValue {
                len: 101 * 1024,
                fingerprint: 0xA,
            },
        );
        assert!(cost > SimDuration::from_micros(80));
        let (v, _) = kv.get("input-a").expect("stored");
        assert_eq!(v.len, 101 * 1024);
        assert_eq!(v.fingerprint, 0xA);
        assert_eq!(kv.ops(), (1, 1));
    }

    #[test]
    fn missing_key() {
        let mut kv = KvStore::new();
        assert!(kv.get("nope").is_none());
        assert!(!kv.delete("nope"));
    }

    #[test]
    fn larger_payloads_cost_more() {
        let mut kv = KvStore::new();
        let small = kv.put(
            "s",
            KvValue {
                len: 1024,
                fingerprint: 1,
            },
        );
        let big = kv.put(
            "b",
            KvValue {
                len: 100 << 20,
                fingerprint: 2,
            },
        );
        assert!(big > small * 10);
    }

    #[test]
    fn accounting() {
        let mut kv = KvStore::new();
        kv.put(
            "a",
            KvValue {
                len: 10,
                fingerprint: 1,
            },
        );
        kv.put(
            "b",
            KvValue {
                len: 20,
                fingerprint: 2,
            },
        );
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.stored_bytes(), 30);
        kv.delete("a");
        assert_eq!(kv.stored_bytes(), 20);
        assert!(!kv.is_empty());
    }
}
