//! Traced invocations: one call that produces an outcome *plus* its
//! trace and metrics.
//!
//! This is the daemon-level entry point behind `faasnapd invoke
//! --trace-out` and the bench harness's artifact dumps. It builds a
//! fresh platform, records the snapshot untraced (the record phase is
//! setup, not the thing being observed), then enables observability for
//! exactly the measured invocation — so the trace starts at request
//! arrival and the metrics cover only test-phase work.

use faas_workloads::Input;
use faasnap::runtime::{ForkOutcome, InvocationOutcome};
use faasnap::strategy::RestoreStrategy;
use faasnap_obs::{Metrics, SelfProfile, Tracer};
use sim_storage::profiles::DiskProfile;

use crate::platform::Platform;

/// An invocation outcome together with the observability it produced.
pub struct TraceRun {
    /// The runtime's measurements and final state.
    pub outcome: InvocationOutcome,
    /// Spans covering the invocation (platform → loader/function →
    /// per-fault), renderable via [`faasnap_obs::chrome_trace_json`] or
    /// [`faasnap_obs::render_text_tree`].
    pub tracer: Tracer,
    /// Metrics covering the invocation (fault counts by class, prefetch
    /// traffic, fault-wait histogram).
    pub metrics: Metrics,
    /// Engine self-profile covering the invocation (event-loop, fault
    /// resolver, and store work counters; wall-ns under the `wallclock`
    /// feature, zero otherwise).
    pub selfprof: SelfProfile,
}

/// Records `function` with its input A under label `"cli"` on a fresh
/// host, then runs one fully traced test-phase invocation of `input`
/// under `strategy`.
pub fn traced_invoke(
    function: &str,
    input: &Input,
    strategy: RestoreStrategy,
    profile: DiskProfile,
    seed: u64,
) -> Result<TraceRun, String> {
    let mut platform = Platform::new(profile, seed);
    for f in faas_workloads::all_functions() {
        platform.register(f);
    }
    let input_a = platform
        .registry()
        .function(function)
        .ok_or_else(|| format!("unknown function {function}"))?
        .input_a();
    platform.record(function, "cli", &input_a)?;

    let tracer = Tracer::enabled();
    let metrics = Metrics::enabled();
    let selfprof = SelfProfile::enabled();
    platform.set_tracer(tracer.clone());
    platform.set_metrics(metrics.clone());
    platform.set_self_profile(selfprof.clone());
    let outcome = platform.invoke(function, "cli", input, strategy)?;
    Ok(TraceRun {
        outcome,
        tracer,
        metrics,
        selfprof,
    })
}

/// A fork outcome together with the observability it produced.
pub struct ForkRun {
    /// Per-sibling outcomes plus fork sharing accounting.
    pub fork: ForkOutcome,
    /// Spans covering the fork (platform → fork → per-sibling
    /// invocations → per-fault).
    pub tracer: Tracer,
    /// Metrics covering the fork (fault counts, prefetch traffic,
    /// `faasnap_fork_*` sharing counters when n > 1).
    pub metrics: Metrics,
    /// Engine self-profile covering the fork.
    pub selfprof: SelfProfile,
}

/// [`traced_invoke`]'s branching sibling: records `function` once, then
/// branches `n` fully traced concurrent restores from the snapshot. With
/// `n = 1` the artifacts are byte-identical to [`traced_invoke`]'s.
pub fn traced_fork(
    function: &str,
    input: &Input,
    strategy: RestoreStrategy,
    profile: DiskProfile,
    seed: u64,
    n: usize,
) -> Result<ForkRun, String> {
    let mut platform = Platform::new(profile, seed);
    for f in faas_workloads::all_functions() {
        platform.register(f);
    }
    let input_a = platform
        .registry()
        .function(function)
        .ok_or_else(|| format!("unknown function {function}"))?
        .input_a();
    platform.record(function, "cli", &input_a)?;

    let tracer = Tracer::enabled();
    let metrics = Metrics::enabled();
    let selfprof = SelfProfile::enabled();
    platform.set_tracer(tracer.clone());
    platform.set_metrics(metrics.clone());
    platform.set_self_profile(selfprof.clone());
    let fork = platform.fork(function, "cli", input, strategy, n)?;
    Ok(ForkRun {
        fork,
        tracer,
        metrics,
        selfprof,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> TraceRun {
        let f = faas_workloads::by_name("hello-world").unwrap();
        traced_invoke(
            "hello-world",
            &f.input_b(),
            RestoreStrategy::faasnap(),
            DiskProfile::nvme_c5d(),
            0xFA5D,
        )
        .unwrap()
    }

    #[test]
    fn trace_spans_cross_three_crates() {
        let tr = run();
        let names = tr.tracer.distinct_span_names();
        // Daemon layer, runtime layer, mm layer.
        assert!(names.contains(&"platform/invoke"), "names: {names:?}");
        assert!(names.contains(&"invocation"));
        assert!(names.contains(&"loader/prefetch"));
        assert!(names.iter().any(|n| n.starts_with("fault/")));
        assert!(
            names.len() >= 6,
            "only {} span names: {names:?}",
            names.len()
        );
    }

    #[test]
    fn metrics_cover_faults_and_prefetch() {
        let tr = run();
        let text = tr.metrics.render_prometheus();
        assert!(text.contains("faasnap_faults_total"));
        assert!(text.contains("faasnap_prefetch_bytes_total"));
        assert!(text.contains("faasnap_fault_wait_us_bucket"));
    }

    #[test]
    fn fault_span_count_matches_report() {
        let tr = run();
        let fault_spans = tr
            .tracer
            .spans()
            .iter()
            .filter(|s| s.name.starts_with("fault/"))
            .count() as u64;
        assert_eq!(fault_spans, tr.outcome.report.total_faults());
    }
}
