//! Invocation trace spans (the artifact's Zipkin analog).
//!
//! The released FaaSnap artifact reports "execution traces of invocations
//! ... accessible on the Zipkin web page" (artifact appendix A.4). This
//! module reconstructs the same span structure from an
//! [`InvocationReport`]: a root `invocation` span with `setup`,
//! `function`, `loader-prefetch`, and `fault-handling` children, rendered
//! as an indented text tree.

use std::fmt;

use faasnap::report::InvocationReport;
use sim_core::time::SimDuration;

/// One timed span.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Span name, e.g. `"setup"`.
    pub name: String,
    /// Offset from the invocation request.
    pub start: SimDuration,
    /// Span duration.
    pub duration: SimDuration,
    /// Nested spans.
    pub children: Vec<Span>,
    /// Free-form annotations (fault counts etc.).
    pub tags: Vec<(String, String)>,
}

impl Span {
    /// Creates a leaf span.
    pub fn new(name: impl Into<String>, start: SimDuration, duration: SimDuration) -> Self {
        Span {
            name: name.into(),
            start,
            duration,
            children: Vec::new(),
            tags: Vec::new(),
        }
    }

    /// Adds a tag.
    pub fn tag(mut self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        self.tags.push((key.into(), value.to_string()));
        self
    }

    /// Total spans in this tree.
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(Span::span_count).sum::<usize>()
    }

    fn render(&self, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{} [{} +{}]",
            self.name, self.start, self.duration
        ));
        for (k, v) in &self.tags {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for c in &self.children {
            c.render(depth + 1, out);
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(0, &mut s);
        f.write_str(&s)
    }
}

/// Builds the span tree of one invocation from its report.
pub fn invocation_trace(label: &str, report: &InvocationReport) -> Span {
    let mut root = Span::new(
        format!("invocation:{label}"),
        SimDuration::ZERO,
        report.total_time(),
    );
    root = root.tag("degraded", report.degraded);

    let setup = Span::new("setup", SimDuration::ZERO, report.setup_time)
        .tag("mmap_calls", report.mmap_calls);
    root.children.push(setup);

    if report.fetch_pages > 0 {
        let fetch = Span::new("prefetch", SimDuration::ZERO, report.fetch_time)
            .tag("pages", report.fetch_pages);
        root.children.push(fetch);
    }

    let mut function = Span::new("function", report.setup_time, report.invocation_time);
    let faults = Span::new("fault-handling", report.setup_time, report.fault_wait)
        .tag("anon", report.anon_faults)
        .tag("minor", report.minor_faults)
        .tag("major", report.major_faults)
        .tag("host_pte", report.host_pte_faults)
        .tag("uffd", report.uffd_faults);
    function.children.push(faults);
    root.children.push(function);
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mm::fault::FaultKind;

    fn sample_report() -> InvocationReport {
        let mut r = InvocationReport {
            setup_time: SimDuration::from_millis(50),
            invocation_time: SimDuration::from_millis(120),
            fetch_pages: 1000,
            fetch_time: SimDuration::from_millis(20),
            mmap_calls: 117,
            ..Default::default()
        };
        r.record_fault(FaultKind::Minor, SimDuration::from_micros(4));
        r.record_fault(FaultKind::Major, SimDuration::from_micros(90));
        r
    }

    #[test]
    fn trace_structure() {
        let span = invocation_trace("image", &sample_report());
        assert_eq!(span.span_count(), 5);
        assert_eq!(span.duration, SimDuration::from_millis(170));
        assert_eq!(span.children.len(), 3);
        assert_eq!(span.children[0].name, "setup");
        assert_eq!(span.children[1].name, "prefetch");
        assert_eq!(span.children[2].name, "function");
        assert_eq!(span.children[2].start, SimDuration::from_millis(50));
    }

    #[test]
    fn no_prefetch_span_without_loader() {
        let mut r = sample_report();
        r.fetch_pages = 0;
        let span = invocation_trace("x", &r);
        assert!(span.children.iter().all(|c| c.name != "prefetch"));
    }

    #[test]
    fn render_contains_tags() {
        let s = format!("{}", invocation_trace("image", &sample_report()));
        assert!(s.contains("invocation:image"));
        assert!(s.contains("mmap_calls=117"));
        assert!(s.contains("major=1"));
        assert!(s.contains("minor=1"));
        // Indentation reflects nesting.
        assert!(s.contains("\n  setup"));
        assert!(s.contains("\n    fault-handling"));
    }
}
