//! The daemon API: record, invoke, and burst.
//!
//! [`Platform`] owns the simulated host and the function registry and
//! exposes the operations the paper's daemon supports ("creating
//! functions using installed images and kernels, booting VMs for a
//! function, invoking functions on the booted VM, taking snapshots of a
//! VM, restoring snapshots", §5), reduced to the flow the evaluation
//! exercises: record phase → drop caches → test-phase invocation, plus
//! the §6.6 bursty workloads.

use faas_workloads::{Function, Input};
use faasnap::error::RestoreError;
use faasnap::runtime::{run_invocations, ForkOutcome, Host, InvocationOutcome, InvocationSpec};
use faasnap::snapstore::FamilyStore;
use faasnap::strategy::RestoreStrategy;
use faasnap_obs::{Metrics, SelfProfile, TraceContext, Tracer};
use faasnap_store::StoreConfig;
use sim_core::time::SimTime;
use sim_storage::faults::FaultPlan;
use sim_storage::file::DeviceId;
use sim_storage::profiles::DiskProfile;

use crate::kv::{KvStore, KvValue};
use crate::registry::FunctionRegistry;

/// Why an invocation produced no outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvokeError {
    /// Registry/staging problem: unknown function or missing artifacts.
    NotFound(String),
    /// The restore stack failed closed (read retries exhausted under
    /// storage faults). The fault report of the failed run is lost with
    /// the VM; the disk's armed [`FaultPlan`] log still holds the
    /// realized injection schedule.
    Restore(RestoreError),
}

impl std::fmt::Display for InvokeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvokeError::NotFound(s) => f.write_str(s),
            InvokeError::Restore(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InvokeError {}

/// Snapshot sharing mode of a burst (§6.6): "the burst of VMs from the
/// same snapshot and from different snapshots".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BurstKind {
    /// All VMs restore from one snapshot (same application).
    SameSnapshot,
    /// Every VM has its own snapshot files (different applications).
    DifferentSnapshots,
}

/// The FaaSnap daemon bound to a simulated host.
pub struct Platform {
    host: Host,
    registry: FunctionRegistry,
    device: DeviceId,
    kv: KvStore,
    /// Content-addressed snapshot store (base+delta per function family),
    /// present once [`Platform::enable_snapshot_store`] ran. Off by
    /// default: enabling it registers an extra file and changes nothing
    /// else until store-backed reads are switched on too.
    snapstore: Option<FamilyStore>,
    store_backed_reads: bool,
}

impl Platform {
    /// Creates a platform on a host with one disk of `profile`.
    pub fn new(profile: DiskProfile, seed: u64) -> Self {
        let host = Host::new(profile, seed);
        let device = host.primary_device();
        Platform {
            host,
            registry: FunctionRegistry::new(),
            device,
            kv: KvStore::new(),
            snapstore: None,
            store_backed_reads: false,
        }
    }

    /// Enables the content-addressed snapshot store: every later record
    /// phase also ingests its memory image as a base layer (first record
    /// of a function) or a dirty-chunk delta (subsequent labels of the
    /// same function). Replaces any existing store.
    pub fn enable_snapshot_store(&mut self, cfg: StoreConfig) {
        self.snapstore = Some(FamilyStore::new(cfg, &mut self.host.fs, self.device));
    }

    /// The snapshot store, if enabled.
    pub fn snapshot_store(&self) -> Option<&FamilyStore> {
        self.snapstore.as_ref()
    }

    /// Routes restore reads of recorded memory files through the store's
    /// deduplicated chunk layout (requires the store to be enabled).
    /// Restore *correctness* is unchanged — only the physical I/O pattern
    /// moves to the shared chunk file.
    pub fn set_store_backed_reads(&mut self, on: bool) {
        self.store_backed_reads = on;
    }

    /// The external state store (the §5 Redis analog). Inputs staged by
    /// [`Platform::invoke`] and function outputs live here.
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// The underlying host (for inspection in tests/experiments).
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// Mutable host access (e.g. to add an EBS device).
    pub fn host_mut(&mut self) -> &mut Host {
        &mut self.host
    }

    /// Device snapshots are placed on.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Places future snapshot artifacts on `device` (e.g. remote EBS for
    /// the §6.7 experiment).
    pub fn set_device(&mut self, device: DeviceId) {
        self.device = device;
    }

    /// Attaches a tracer: every later record/invoke emits causal spans
    /// through the runtime and the fault resolver.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.host.tracer = tracer;
    }

    /// The trace handle (disabled unless [`Platform::set_tracer`] ran).
    pub fn tracer(&self) -> &Tracer {
        &self.host.tracer
    }

    /// Attaches a metrics registry.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.host.metrics = metrics;
    }

    /// The metrics handle.
    pub fn metrics(&self) -> &Metrics {
        &self.host.metrics
    }

    /// Attaches an engine self-profiler: later record/invoke calls count
    /// event-loop, fault-resolution, and store work into it.
    pub fn set_self_profile(&mut self, prof: SelfProfile) {
        self.host.selfprof = prof;
    }

    /// The self-profile handle.
    pub fn self_profile(&self) -> &SelfProfile {
        &self.host.selfprof
    }

    /// Arms deterministic storage fault injection on the primary device:
    /// later record/invoke calls run under `plan`'s schedule. The plan
    /// stays armed (and keeps consuming its injection budget) until
    /// [`Platform::clear_storage_faults`].
    pub fn inject_storage_faults(&mut self, plan: FaultPlan) {
        self.host.disks[0].set_fault_plan(plan);
    }

    /// Disarms fault injection, returning the plan (whose log holds the
    /// realized schedule).
    pub fn clear_storage_faults(&mut self) -> Option<FaultPlan> {
        self.host.disks[0].clear_fault_plan()
    }

    /// The realized injection schedule so far, as stable text (empty when
    /// no plan is armed or nothing fired). Byte-comparable across runs.
    pub fn fault_schedule(&self) -> String {
        self.host.disks[0]
            .fault_plan()
            .map(|p| p.schedule())
            .unwrap_or_default()
    }

    /// Registers a function.
    pub fn register(&mut self, function: Function) {
        self.registry.register(function);
    }

    /// The registry.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// Runs the record phase for `name` with `input`, storing artifacts
    /// under `label`.
    pub fn record(&mut self, name: &str, label: &str, input: &Input) -> Result<(), String> {
        let device = self.device;
        let tracer = self.host.tracer.clone();
        let ctx = tracer.begin(
            "platform/record",
            "daemon",
            SimTime::ZERO,
            TraceContext::NONE,
        );
        tracer.tag(ctx, "function", name);
        tracer.tag(ctx, "label", label);
        tracer.push_parent(ctx);
        let result = self
            .registry
            .record(&mut self.host, name, label, input, device);
        tracer.pop_parent();
        tracer.end(ctx, tracer.latest_end().unwrap_or(SimTime::ZERO));
        result?;
        // Ingest the recorded image into the snapshot store: function
        // name = family, so the first label emits the base layer and each
        // later label a dirty-chunk delta over it.
        if let Some(store) = self.snapstore.as_mut() {
            let artifacts = self
                .registry
                .artifacts(name, label)
                .ok_or_else(|| format!("{name}.{label}: artifacts vanished after record"))?;
            store
                .record(
                    &mut self.host.fs,
                    name,
                    &format!("{name}.{label}"),
                    artifacts.snapshot.memory(),
                )
                .map_err(|e| format!("snapshot store ingest {name}.{label}: {e}"))?;
        }
        Ok(())
    }

    /// Test-phase invocation: drops caches (§6.1 hygiene), restores under
    /// `strategy`, and executes the function with `input`.
    pub fn invoke(
        &mut self,
        name: &str,
        label: &str,
        input: &Input,
        strategy: RestoreStrategy,
    ) -> Result<InvocationOutcome, String> {
        self.try_invoke(name, label, input, strategy)
            .map_err(|e| e.to_string())
    }

    /// [`Platform::invoke`] with a typed error: restore failures under
    /// storage faults are distinguishable from registry misses. A failed
    /// invocation writes no output to the state store.
    pub fn try_invoke(
        &mut self,
        name: &str,
        label: &str,
        input: &Input,
        strategy: RestoreStrategy,
    ) -> Result<InvocationOutcome, InvokeError> {
        let spec = self
            .build_spec(name, label, input, strategy)
            .map_err(InvokeError::NotFound)?;
        if self.store_backed_reads {
            if let Some(store) = self.snapstore.as_ref() {
                // Back the logical memory file with the store's chunk
                // layout so restore reads hit the deduplicated extents.
                if let (Some(artifacts), Ok(layout)) = (
                    self.registry.artifacts(name, label),
                    store.layout(&format!("{name}.{label}")),
                ) {
                    self.host
                        .map_chunked_file(artifacts.snapshot.mem_file(), layout);
                }
            }
        }
        // Stage the input payload in external storage (the function
        // fetches it from there at the start of its trace) and record the
        // output it produces.
        self.kv.put(
            format!("{name}/input"),
            KvValue {
                len: input.payload_kb * 1024,
                fingerprint: input.seed,
            },
        );
        self.host.drop_caches();
        let tracer = self.host.tracer.clone();
        let ctx = tracer.begin(
            "platform/invoke",
            "daemon",
            SimTime::ZERO,
            TraceContext::NONE,
        );
        tracer.tag(ctx, "function", name);
        tracer.tag(ctx, "label", label);
        tracer.tag(ctx, "strategy", strategy.label());
        tracer.push_parent(ctx);
        let result = faasnap::runtime::try_run_invocation(&mut self.host, spec);
        tracer.pop_parent();
        match result {
            Ok(outcome) => {
                tracer.end(ctx, SimTime::ZERO + outcome.report.total_time());
                self.kv.put(
                    format!("{name}/output"),
                    KvValue {
                        len: input.payload_kb * 1024,
                        fingerprint: outcome.final_memory.checksum(),
                    },
                );
                Ok(outcome)
            }
            Err(e) => {
                tracer.end(ctx, tracer.latest_end().unwrap_or(SimTime::ZERO));
                Err(InvokeError::Restore(e))
            }
        }
    }

    /// Branches `n` concurrent restores from one snapshot (§6.6's
    /// same-snapshot burst taken to its logical end): all siblings share
    /// the frozen base image copy-on-write and the snapshot-keyed page
    /// state, so the working set is read from disk once for the whole
    /// batch. `n = 1` is byte-identical to [`Platform::try_invoke`].
    pub fn try_fork(
        &mut self,
        name: &str,
        label: &str,
        input: &Input,
        strategy: RestoreStrategy,
        n: usize,
    ) -> Result<ForkOutcome, InvokeError> {
        assert!(n >= 1, "a fork needs at least one sibling");
        let spec = self
            .build_spec(name, label, input, strategy)
            .map_err(InvokeError::NotFound)?;
        if self.store_backed_reads {
            if let Some(store) = self.snapstore.as_ref() {
                if let (Some(artifacts), Ok(layout)) = (
                    self.registry.artifacts(name, label),
                    store.layout(&format!("{name}.{label}")),
                ) {
                    self.host
                        .map_chunked_file(artifacts.snapshot.mem_file(), layout);
                }
            }
        }
        self.kv.put(
            format!("{name}/input"),
            KvValue {
                len: input.payload_kb * 1024,
                fingerprint: input.seed,
            },
        );
        self.host.drop_caches();
        let tracer = self.host.tracer.clone();
        // A 1-way fork is an ordinary invocation and must trace as one.
        let span = if n > 1 {
            "platform/fork"
        } else {
            "platform/invoke"
        };
        let ctx = tracer.begin(span, "daemon", SimTime::ZERO, TraceContext::NONE);
        tracer.tag(ctx, "function", name);
        tracer.tag(ctx, "label", label);
        tracer.tag(ctx, "strategy", strategy.label());
        if n > 1 {
            tracer.tag(ctx, "siblings", n as u64);
        }
        tracer.push_parent(ctx);
        let result = faasnap::runtime::try_run_fork(&mut self.host, spec, n);
        tracer.pop_parent();
        match result {
            Ok(fork) => {
                let end = fork
                    .outcomes
                    .iter()
                    .map(|o| o.report.total_time())
                    .max()
                    .unwrap_or_default();
                tracer.end(ctx, SimTime::ZERO + end);
                self.kv.put(
                    format!("{name}/output"),
                    KvValue {
                        len: input.payload_kb * 1024,
                        fingerprint: fork.outcomes[0].final_memory.checksum(),
                    },
                );
                Ok(fork)
            }
            Err(e) => {
                tracer.end(ctx, tracer.latest_end().unwrap_or(SimTime::ZERO));
                Err(InvokeError::Restore(e))
            }
        }
    }

    /// [`Platform::try_fork`] with a stringly error (CLI surface).
    pub fn fork(
        &mut self,
        name: &str,
        label: &str,
        input: &Input,
        strategy: RestoreStrategy,
        n: usize,
    ) -> Result<ForkOutcome, String> {
        self.try_fork(name, label, input, strategy, n)
            .map_err(|e| e.to_string())
    }

    /// Builds a test-phase spec without running it.
    pub fn build_spec(
        &self,
        name: &str,
        label: &str,
        input: &Input,
        strategy: RestoreStrategy,
    ) -> Result<InvocationSpec, String> {
        let f = self
            .registry
            .function(name)
            .ok_or_else(|| format!("unknown function {name}"))?;
        let trace = f.trace(input);
        let artifacts = self
            .registry
            .artifacts(name, label)
            .ok_or_else(|| format!("{name}: no artifacts recorded under label {label}"))?;
        Ok(artifacts.spec(strategy, trace))
    }

    /// Runs a burst of `parallelism` simultaneous invocations (§6.6). For
    /// [`BurstKind::SameSnapshot`] all VMs share the artifacts recorded
    /// under `label`; for [`BurstKind::DifferentSnapshots`] each VM `i`
    /// uses artifacts recorded under `label.i` (recording them on demand).
    /// Each VM receives `input` with a distinct content seed.
    pub fn burst(
        &mut self,
        name: &str,
        label: &str,
        input: &Input,
        strategy: RestoreStrategy,
        parallelism: u32,
        kind: BurstKind,
    ) -> Result<Vec<InvocationOutcome>, String> {
        assert!(parallelism > 0);
        let mut specs = Vec::with_capacity(parallelism as usize);
        match kind {
            BurstKind::SameSnapshot => {
                for i in 0..parallelism {
                    let vm_input = input.reseeded(input.seed ^ (0x1000 + i as u64));
                    specs.push(self.build_spec(name, label, &vm_input, strategy)?);
                }
            }
            BurstKind::DifferentSnapshots => {
                for i in 0..parallelism {
                    let inst = format!("{label}.{i}");
                    if self.registry.artifacts(name, &inst).is_none() {
                        // Record an independent snapshot (its own files),
                        // following the standard protocol: the record
                        // phase always uses the function's input A.
                        let rec_input = self
                            .registry
                            .function(name)
                            .ok_or_else(|| format!("unknown function {name}"))?
                            .input_a()
                            .reseeded(input.seed ^ (0x2000 + i as u64));
                        self.record(name, &inst, &rec_input)?;
                    }
                    let vm_input = input.reseeded(input.seed ^ (0x3000 + i as u64));
                    specs.push(self.build_spec(name, &inst, &vm_input, strategy)?);
                }
            }
        }
        self.host.drop_caches();
        Ok(run_invocations(&mut self.host, specs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    fn platform() -> Platform {
        let mut p = Platform::new(DiskProfile::nvme_c5d(), 7);
        p.register(faas_workloads::by_name("hello-world").unwrap());
        p
    }

    #[test]
    fn record_then_invoke() {
        let mut p = platform();
        let f = faas_workloads::by_name("hello-world").unwrap();
        p.record("hello-world", "a", &f.input_a()).unwrap();
        let out = p
            .invoke("hello-world", "a", &f.input_b(), RestoreStrategy::faasnap())
            .unwrap();
        assert!(out.report.total_time() > SimDuration::ZERO);
        assert!(out.report.total_faults() > 0);
    }

    #[test]
    fn invoke_without_record_fails() {
        let mut p = platform();
        let f = faas_workloads::by_name("hello-world").unwrap();
        let err = p
            .invoke("hello-world", "a", &f.input_b(), RestoreStrategy::Vanilla)
            .unwrap_err();
        assert!(err.contains("no artifacts"));
    }

    #[test]
    fn unknown_function_fails() {
        let mut p = platform();
        let input = Input::new(1.0, 0, 1);
        assert!(p
            .invoke("ghost", "a", &input, RestoreStrategy::Vanilla)
            .is_err());
    }

    #[test]
    fn same_snapshot_burst_shares_cache() {
        let mut p = platform();
        let f = faas_workloads::by_name("hello-world").unwrap();
        p.record("hello-world", "a", &f.input_a()).unwrap();
        let outs = p
            .burst(
                "hello-world",
                "a",
                &f.input_b(),
                RestoreStrategy::faasnap(),
                4,
                BurstKind::SameSnapshot,
            )
            .unwrap();
        assert_eq!(outs.len(), 4);
        // Read-once lock: the total prefetch traffic should be roughly one
        // loading set, not four (some double-reads from racing faults are
        // fine).
        let ls_pages = p
            .registry()
            .artifacts("hello-world", "a")
            .unwrap()
            .ls
            .file_pages();
        let loader_pages = p.host().disks[0]
            .stats()
            .pages_of(sim_storage::device::IoKind::LoaderPrefetch);
        assert!(
            loader_pages < ls_pages * 2,
            "loader read {loader_pages} pages for a {ls_pages}-page loading set"
        );
    }

    #[test]
    fn different_snapshot_burst_records_instances() {
        let mut p = platform();
        let f = faas_workloads::by_name("hello-world").unwrap();
        let outs = p
            .burst(
                "hello-world",
                "d",
                &f.input_b(),
                RestoreStrategy::Vanilla,
                3,
                BurstKind::DifferentSnapshots,
            )
            .unwrap();
        assert_eq!(outs.len(), 3);
        assert!(p.registry().artifacts("hello-world", "d.0").is_some());
        assert!(p.registry().artifacts("hello-world", "d.2").is_some());
        // Distinct memory files per instance.
        let f0 = p
            .registry()
            .artifacts("hello-world", "d.0")
            .unwrap()
            .snapshot
            .mem_file();
        let f1 = p
            .registry()
            .artifacts("hello-world", "d.1")
            .unwrap()
            .snapshot
            .mem_file();
        assert_ne!(f0, f1);
    }

    #[test]
    fn snapshot_store_dedups_instance_records() {
        let mut p = platform();
        p.enable_snapshot_store(faasnap_store::StoreConfig { chunk_pages: 64 });
        let f = faas_workloads::by_name("hello-world").unwrap();
        p.record("hello-world", "a", &f.input_a()).unwrap();
        let base_unique = p.snapshot_store().unwrap().unique_bytes();
        assert!(base_unique > 0);
        // A second instance of the same function: the delta must cost far
        // less than a second full base.
        p.record(
            "hello-world",
            "b",
            &f.input_a().reseeded(f.input_a().seed ^ 0x77),
        )
        .unwrap();
        let store = p.snapshot_store().unwrap();
        let added = store.unique_bytes() - base_unique;
        assert!(
            added * 2 < base_unique,
            "delta {added} bytes vs base {base_unique}"
        );
        assert!(store.dedup_ratio() > 1.0);
        store.store().debug_validate().unwrap();
        // The store's materialization is byte-equivalent to the recorded
        // snapshot memory.
        let mat = store.materialize("hello-world.b").unwrap();
        let orig = p
            .registry()
            .artifacts("hello-world", "b")
            .unwrap()
            .snapshot
            .memory()
            .checksum();
        assert_eq!(mat.checksum(), orig);
    }

    #[test]
    fn store_backed_reads_preserve_restore_correctness() {
        let f = faas_workloads::by_name("hello-world").unwrap();
        let run = |store_backed: bool| {
            let mut p = platform();
            if store_backed {
                p.enable_snapshot_store(faasnap_store::StoreConfig { chunk_pages: 64 });
                p.set_store_backed_reads(true);
            }
            p.record("hello-world", "a", &f.input_a()).unwrap();
            let out = p
                .invoke("hello-world", "a", &f.input_b(), RestoreStrategy::faasnap())
                .unwrap();
            out.final_memory.checksum()
        };
        // The guest sees identical memory either way; only the physical
        // I/O pattern differs.
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn burst_determinism() {
        let run = || {
            let mut p = platform();
            let f = faas_workloads::by_name("hello-world").unwrap();
            p.record("hello-world", "a", &f.input_a()).unwrap();
            p.burst(
                "hello-world",
                "a",
                &f.input_b(),
                RestoreStrategy::faasnap(),
                3,
                BurstKind::SameSnapshot,
            )
            .unwrap()
            .iter()
            .map(|o| o.report.total_time().as_nanos())
            .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
