//! Offline stand-in for the `criterion` crate.
//!
//! The sandbox this repository builds in has no registry access, so the
//! real criterion cannot be downloaded. This crate implements the small
//! API surface the workspace's `micro` bench uses — [`Criterion`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`] — with a
//! plain timing loop: warm up briefly, run a fixed number of timed
//! iterations, print mean time per iteration. No statistics, plots, or
//! regression detection.

#![forbid(unsafe_code)]
use std::time::{Duration, Instant};

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Short warm-up so one-time lazy initialization is not billed.
        for _ in 0..self.iterations.min(3) {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_ITERS overrides the per-benchmark iteration count.
        // faasnap-lint: allow(no-env-read, CRITERION_ITERS scales the shim's timing loop only; timings are reported, never compared against goldens)
        let iterations = std::env::var("CRITERION_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        Criterion { iterations }
    }
}

impl Criterion {
    /// Runs `f` as the benchmark named `id` and prints its mean time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iterations: self.iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iterations.max(1) as f64;
        println!(
            "{id:<40} {:>12.3} us/iter  ({} iters)",
            per_iter * 1e6,
            b.iterations
        );
        self
    }
}

/// Declares a benchmark group: a function that runs each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion { iterations: 5 };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        // 3 warm-up + 5 timed.
        assert_eq!(calls, 8);
    }
}
